open Linalg

type status =
  | Optimal of { x : Vec.t; objective_value : float }
  | Unbounded
  | Infeasible

let eps = 1e-9

(* Tableau layout: [rows] constraint rows, one objective row kept
   separately; column [ncols] is the right-hand side.  [basis.(r)] is
   the variable basic in row [r]. *)
type tableau = {
  rows : float array array;
  basis : int array;
  obj : float array;  (* length ncols + 1; last entry = -objective *)
  ncols : int;
}

let pivot t r c =
  let piv = t.rows.(r).(c) in
  let row = t.rows.(r) in
  for j = 0 to t.ncols do
    row.(j) <- row.(j) /. piv
  done;
  let eliminate target =
    let factor = target.(c) in
    if Float.abs factor > 0.0 then
      for j = 0 to t.ncols do
        target.(j) <- target.(j) -. (factor *. row.(j))
      done
  in
  Array.iteri (fun i target -> if i <> r then eliminate target) t.rows;
  eliminate t.obj;
  t.basis.(r) <- c

(* Bland's rule keeps the method finite on degenerate problems. *)
let entering t ~allowed =
  let best = ref None in
  for c = allowed - 1 downto 0 do
    if t.obj.(c) < -.eps then best := Some c
  done;
  !best

let leaving t c =
  let best = ref None in
  Array.iteri
    (fun r row ->
      if row.(c) > eps then begin
        let ratio = row.(t.ncols) /. row.(c) in
        match !best with
        | None -> best := Some (r, ratio)
        | Some (r', ratio') ->
            if
              ratio < ratio' -. eps
              || (Float.abs (ratio -. ratio') <= eps
                 && t.basis.(r) < t.basis.(r'))
            then best := Some (r, ratio)
    end)
    t.rows;
  Option.map fst !best

let rec iterate t ~allowed =
  match entering t ~allowed with
  | None -> `Optimal
  | Some c -> (
      match leaving t c with
      | None -> `Unbounded
      | Some r ->
          pivot t r c;
          iterate t ~allowed)

let solve ~c ~a ~b =
  let n = Vec.dim c in
  let m = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Simplex.solve: A/c mismatch";
  if Vec.dim b <> m then invalid_arg "Simplex.solve: A/b mismatch";
  (* Normalize rows to nonnegative rhs; flipped rows need an
     artificial variable (their slack enters with coefficient -1). *)
  let flipped = Array.init m (fun i -> b.(i) < 0.0) in
  let artificial_rows =
    Array.to_list (Array.of_seq (Seq.filter (fun i -> flipped.(i))
                                   (Seq.init m (fun i -> i))))
  in
  let k = List.length artificial_rows in
  let ncols = n + m + k in
  let art_col =
    let tbl = Hashtbl.create k in
    List.iteri (fun j r -> Hashtbl.add tbl r (n + m + j)) artificial_rows;
    tbl
  in
  let rows =
    Array.init m (fun i ->
        let sign = if flipped.(i) then -1.0 else 1.0 in
        let row = Array.make (ncols + 1) 0.0 in
        for j = 0 to n - 1 do
          row.(j) <- sign *. Mat.get a i j
        done;
        row.(n + i) <- sign (* slack *);
        (match Hashtbl.find_opt art_col i with
        | Some col -> row.(col) <- 1.0
        | None -> ());
        row.(ncols) <- sign *. b.(i);
        row)
  in
  let basis =
    Array.init m (fun i ->
        match Hashtbl.find_opt art_col i with
        | Some col -> col
        | None -> n + i)
  in
  (* Phase 1: minimize the sum of artificials.  The objective row is
     the cost row minus the rows of the basic artificials. *)
  if k > 0 then begin
    let obj = Array.make (ncols + 1) 0.0 in
    Hashtbl.iter (fun _ col -> obj.(col) <- 1.0) art_col;
    Array.iteri
      (fun r bvar ->
        if bvar >= n + m then
          for j = 0 to ncols do
            obj.(j) <- obj.(j) -. rows.(r).(j)
          done)
      basis;
    let t = { rows; basis; obj; ncols } in
    (match iterate t ~allowed:ncols with
    | `Unbounded -> assert false (* phase 1 is bounded below by 0 *)
    | `Optimal -> ());
    if -.t.obj.(ncols) > 1e-7 then raise Exit
  end;
  (* Drive any remaining zero-level artificials out of the basis, or
     drop their (redundant) rows. *)
  let keep = ref [] in
  Array.iteri
    (fun r bvar ->
      if bvar >= n + m then begin
        let t = { rows; basis; obj = Array.make (ncols + 1) 0.0; ncols } in
        let col = ref None in
        for j = n + m - 1 downto 0 do
          if Float.abs rows.(r).(j) > eps then col := Some j
        done;
        match !col with
        | Some j -> pivot t r j
        | None -> () (* redundant row; dropped below *)
      end)
    basis;
  Array.iteri
    (fun r bvar -> if bvar < n + m then keep := r :: !keep)
    basis;
  let keep = List.rev !keep in
  let rows = Array.of_list (List.map (fun r -> rows.(r)) keep) in
  let basis = Array.of_list (List.map (fun r -> basis.(r)) keep) in
  (* Phase 2: the real objective, expressed in the current basis. *)
  let obj = Array.make (ncols + 1) 0.0 in
  for j = 0 to n - 1 do
    obj.(j) <- c.(j)
  done;
  Array.iteri
    (fun r bvar ->
      let cost = if bvar < n then c.(bvar) else 0.0 in
      if Float.abs cost > 0.0 then
        for j = 0 to ncols do
          obj.(j) <- obj.(j) -. (cost *. rows.(r).(j))
        done)
    basis;
  let t = { rows; basis; obj; ncols } in
  match iterate t ~allowed:(n + m) with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let x = Vec.zeros n in
      Array.iteri
        (fun r bvar -> if bvar < n then x.(bvar) <- t.rows.(r).(t.ncols))
        t.basis;
      Optimal { x; objective_value = Vec.dot c x }

let solve ~c ~a ~b = try solve ~c ~a ~b with Exit -> Infeasible
