(** Log-barrier interior-point method.

    Solves [minimize f0(x) subject to f_j(x) <= 0, j = 1..m] where
    [f0] and every [f_j] are convex quadratics ({!Quad.t}), by
    path-following: repeatedly center [t*f0(x) - sum_j log(-f_j(x))]
    with damped Newton ({!Newton}) and increase [t] by [mu] until the
    guaranteed duality gap [m/t] is below tolerance.  This is the
    algorithm class CVX applied to the paper's models (Boyd &
    Vandenberghe, ch. 11). *)

open Linalg

type problem = { objective : Quad.t; constraints : Quad.t array }
(** All functions must share the same dimension. *)

type options = {
  mu : float;
      (** Barrier growth factor.  The default is a short-step 2.0:
          long steps (10-50) realize their pessimistic per-centering
          Newton bound on problems with many near-parallel constraints
          along a curved wall, which is precisely the structure of the
          thermal models this library exists for. *)
  gap_tol : float;  (** Target duality gap [m/t] (default 1e-7). *)
  t0 : float;  (** Initial barrier parameter (default 1.0). *)
  max_outer : int;  (** Outer (centering) iteration cap (default 120). *)
  newton : Newton.options;
}

val default_options : options

type result = {
  x : Vec.t;  (** Final (approximately optimal) primal point. *)
  objective_value : float;
  dual : Vec.t;
      (** Approximate dual multipliers [lambda_j = 1/(t * -f_j(x))]. *)
  gap : float;  (** Guaranteed duality-gap bound [m/t]. *)
  outer_iterations : int;
  newton_iterations : int;  (** Total inner Newton steps. *)
  stopped_early : bool;  (** [true] if [stop_early] fired. *)
}

val barrier_value : problem -> float -> Vec.t -> float option
(** [barrier_value p t x] is [t*f0(x) - sum log(-f_j(x))], or [None]
    when [x] is not strictly feasible.  Exposed for testing. *)

val is_strictly_feasible : problem -> Vec.t -> bool

val solve :
  ?options:options ->
  ?stop_early:(Vec.t -> bool) ->
  problem ->
  Vec.t ->
  result
(** [solve p x0] requires strictly feasible [x0]
    ([Invalid_argument] otherwise).  [stop_early] is checked after each
    centering step; used by phase-I feasibility searches. *)
