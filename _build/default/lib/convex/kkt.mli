(** KKT residuals: a posteriori optimality certificates.

    For [minimize f0 s.t. f_j <= 0] with primal [x] and duals
    [lambda], the residuals measure stationarity
    [||grad f0 + sum lambda_j grad f_j||], primal feasibility
    [max_j f_j(x)]+, dual feasibility [max_j (-lambda_j)]+ and
    complementary slackness [max_j |lambda_j f_j(x)|].  The barrier
    method guarantees all four are small at convergence; the tests
    assert it. *)

open Linalg

type residuals = {
  stationarity : float;
  primal_infeasibility : float;
  dual_infeasibility : float;
  complementarity : float;
}

val residuals : Barrier.problem -> Vec.t -> Vec.t -> residuals
(** [residuals p x lambda]. *)

val max_residual : residuals -> float

val pp : Format.formatter -> residuals -> unit
