open Linalg

type problem = { objective : Quad.t; constraints : Quad.t array }

type options = {
  mu : float;
  gap_tol : float;
  t0 : float;
  max_outer : int;
  newton : Newton.options;
}

(* A short-step schedule (mu = 2) by default: problems with thousands
   of near-parallel constraints hugging a curved wall (exactly the
   Pro-Temp thermal models) realize the pessimistic long-step bound
   O(m (mu - 1 - log mu)) on Newton work per centering, so small
   increments are far cheaper overall; on small problems the extra
   outer iterations cost microseconds. *)
let default_options =
  { mu = 2.0; gap_tol = 1e-7; t0 = 1.0; max_outer = 120;
    newton = { Newton.default_options with tol = 1e-9; max_iter = 500 } }

type result = {
  x : Vec.t;
  objective_value : float;
  dual : Vec.t;
  gap : float;
  outer_iterations : int;
  newton_iterations : int;
  stopped_early : bool;
}

let check_problem p =
  let n = Quad.dim p.objective in
  Array.iter
    (fun c ->
      if Quad.dim c <> n then
        invalid_arg "Barrier: constraint dimension mismatch")
    p.constraints;
  n

let barrier_value p t x =
  let rec go j acc =
    if j >= Array.length p.constraints then Some acc
    else
      let g = Quad.eval p.constraints.(j) x in
      if g >= 0.0 then None else go (j + 1) (acc -. log (-.g))
  in
  go 0 (t *. Quad.eval p.objective x)

let is_strictly_feasible p x =
  Array.for_all (fun c -> Quad.eval c x < 0.0) p.constraints

(* Gradient and Hessian of the centering function
   phi_t(x) = t f0 - sum log(-f_j):
     grad = t grad_f0 + sum grad_f_j / (-f_j)
     hess = t P0 + sum [ grad_f_j grad_f_j^T / f_j^2 + P_j / (-f_j) ].
   Must only be called at strictly feasible points. *)
let grad_hess p t x =
  let g = Vec.scale t (Quad.grad p.objective x) in
  let h = Mat.scale t (Quad.hess p.objective) in
  (* Rank-one terms accumulate into the upper triangle only; affine
     constraints contribute their coefficient vector directly (no
     gradient allocation). *)
  Array.iter
    (fun c ->
      let fj = Quad.eval c x in
      let inv = -1.0 /. fj in
      if Quad.is_affine c then begin
        let q = Quad.unsafe_linear_part c in
        Vec.axpy_into ~dst:g inv q;
        Mat.add_outer_upper_into h (inv *. inv) q
      end
      else begin
        let gj = Quad.grad c x in
        Vec.axpy_into ~dst:g inv gj;
        Mat.add_outer_upper_into h (inv *. inv) gj;
        Mat.add_into ~dst:h (Mat.scale inv (Quad.hess c))
      end)
    p.constraints;
  Mat.mirror_upper h;
  (g, h)

let solve ?(options = default_options) ?stop_early p x0 =
  let n = check_problem p in
  if Vec.dim x0 <> n then invalid_arg "Barrier.solve: x0 dimension mismatch";
  if not (is_strictly_feasible p x0) then
    invalid_arg "Barrier.solve: x0 not strictly feasible";
  let m = Array.length p.constraints in
  let duals t x =
    Array.map (fun c -> 1.0 /. (t *. -.Quad.eval c x)) p.constraints
  in
  let finish ~t ~x ~outer ~inner ~stopped_early =
    {
      x;
      objective_value = Quad.eval p.objective x;
      dual = duals t x;
      gap = float_of_int m /. t;
      outer_iterations = outer;
      newton_iterations = inner;
      stopped_early;
    }
  in
  if m = 0 then
    (* Unconstrained: a single Newton run on f0. *)
    let oracle =
      {
        Newton.value = (fun x -> Some (Quad.eval p.objective x));
        grad_hess =
          (fun x -> (Quad.grad p.objective x, Quad.hess p.objective));
      }
    in
    let r = Newton.minimize ~options:options.newton oracle x0 in
    finish ~t:infinity ~x:r.Newton.x ~outer:1 ~inner:r.Newton.iterations
      ~stopped_early:false
  else begin
    let rec outer_loop t x outer inner =
      let oracle =
        {
          Newton.value = (fun y -> barrier_value p t y);
          grad_hess = (fun y -> grad_hess p t y);
        }
      in
      let r = Newton.minimize ~options:options.newton oracle x in
      let x = r.Newton.x in
      let inner = inner + r.Newton.iterations in
      let gap = float_of_int m /. t in
      let early =
        match stop_early with Some f -> f x | None -> false
      in
      if early then finish ~t ~x ~outer ~inner ~stopped_early:true
      else if gap <= options.gap_tol then
        finish ~t ~x ~outer ~inner ~stopped_early:false
      else if outer >= options.max_outer then
        finish ~t ~x ~outer ~inner ~stopped_early:false
      else outer_loop (t *. options.mu) x (outer + 1) inner
    in
    outer_loop options.t0 (Vec.copy x0) 1 0
  end
