(** Disciplined-convex expressions: a small CVX-style modeling layer.

    Expressions are built from variables, constants and the
    composition rules of disciplined convex programming; every
    expression carries its curvature ([Affine], [Convex], [Concave]),
    and compositions that do not preserve a usable curvature are
    rejected with {!Non_dcp} at construction time.  Every accepted
    expression is representable as a quadratic function, so compiling
    a model to a {!Barrier.problem} is direct.

    Example — the paper's Eq. 3 power objective with a frequency
    floor:
    {[
      let f  = Expr.var n i in                 (* frequency of core i *)
      let p  = Expr.scale c (Expr.square f) in (* p = c f^2           *)
      let c1 = Expr.geq (Expr.sum_vars n) (Expr.const n target) in
      ...
    ]} *)

open Linalg

exception Non_dcp of string
(** Raised when a composition violates the DCP rules (e.g. the square
    of a non-affine expression, or [convex <= convex]). *)

type curvature = Affine | Convex | Concave

type t

(** {1 Atoms} *)

val var : int -> int -> t
(** [var n i] is the variable [x_i] in an [n]-dimensional model. *)

val const : int -> float -> t
(** [const n c] is the constant [c]. *)

val affine_of : Vec.t -> float -> t
(** [affine_of q r] is [q^T x + r]. *)

val sum_vars : int -> t
(** [sum_vars n] is [x_0 + ... + x_{n-1}]. *)

(** {1 Composition} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val scale : float -> t -> t
(** Multiplication by a constant; a negative factor flips curvature. *)

val square : t -> t
(** Square of an {e affine} expression (DCP: convex). *)

val sum_squares : t list -> t
(** Sum of squares of affine expressions. *)

val quad_form : Mat.t -> t
(** [quad_form p] is [1/2 x^T P x]; requires [P] PSD (checked). *)

(** {1 Queries} *)

val curvature : t -> curvature
val dim : t -> int
val to_quad : t -> Quad.t
val eval : t -> Vec.t -> float

(** {1 Constraints and problems} *)

type constr

val leq : t -> t -> constr
(** [leq lhs rhs]: requires [lhs] convex-or-affine and [rhs]
    concave-or-affine. *)

val geq : t -> t -> constr
(** [geq lhs rhs] is [leq rhs lhs]. *)

val box : int -> int -> lo:float -> hi:float -> constr list
(** [box n i ~lo ~hi] is the two constraints [lo <= x_i <= hi]. *)

val constr_quad : constr -> Quad.t
(** The compiled form [g(x) <= 0]. *)

val minimize : t -> constr list -> Barrier.problem
(** Compile a model.  The objective must be convex-or-affine. *)

val maximize : t -> constr list -> Barrier.problem
(** [maximize e cs] is [minimize (neg e) cs]; [e] must be
    concave-or-affine. *)
