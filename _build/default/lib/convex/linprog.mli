(** Linear programming as a special case of the barrier solver.

    [minimize c^T x subject to A x <= b].  Exists both as a
    convenience and as a cross-check: LPs have easily verified optima,
    so they make good solver tests. *)

open Linalg

type status =
  | Optimal of { x : Vec.t; objective_value : float; dual : Vec.t }
  | Infeasible of float

val solve :
  ?options:Barrier.options -> c:Vec.t -> a:Mat.t -> b:Vec.t -> unit -> status
(** The feasible region should be bounded (include explicit box rows
    in [a] if necessary); an unbounded LP will exhaust the iteration
    budget and return the last iterate. *)
