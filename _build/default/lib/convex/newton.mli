(** Damped Newton's method with backtracking line search.

    Minimizes a smooth, strictly convex function given by an oracle.
    The oracle's value function returns [None] outside the domain
    (e.g. where a log-barrier argument would be non-positive), and the
    line search never leaves the domain.  Termination is by the Newton
    decrement [lambda^2 / 2 <= tol], the standard criterion for
    self-concordant functions (Boyd & Vandenberghe, ch. 9). *)

open Linalg

type oracle = {
  value : Vec.t -> float option;
      (** Function value, [None] outside the domain. *)
  grad_hess : Vec.t -> Vec.t * Mat.t;
      (** Gradient and Hessian at a domain point. *)
}

type options = {
  tol : float;  (** Newton-decrement threshold ([lambda^2/2]). *)
  max_iter : int;
  alpha : float;  (** Armijo fraction, in (0, 1/2). *)
  beta : float;  (** Backtracking factor, in (0, 1). *)
}

val default_options : options
(** [tol = 1e-10], [max_iter = 100], [alpha = 0.25], [beta = 0.5]. *)

type outcome =
  | Converged
  | Iteration_limit
  | Line_search_failed
      (** The step could not make progress; the current iterate is
          returned as the best available point. *)

type result = {
  x : Vec.t;
  value : float;
  decrement : float;  (** Last Newton decrement [lambda^2 / 2]. *)
  iterations : int;
  outcome : outcome;
}

val minimize : ?options:options -> oracle -> Vec.t -> result
(** [minimize oracle x0] runs damped Newton from [x0], which must lie
    in the domain ([Invalid_argument] otherwise). *)
