open Linalg

exception Non_dcp of string

type curvature = Affine | Convex | Concave

type t = { quad : Quad.t; curv : curvature }

let reject fmt = Format.kasprintf (fun s -> raise (Non_dcp s)) fmt

let var n i = { quad = Quad.linear_coord n i 1.0; curv = Affine }
let const n c = { quad = Quad.constant n c; curv = Affine }
let affine_of q r = { quad = Quad.affine q r; curv = Affine }
let sum_vars n = { quad = Quad.affine (Vec.create n 1.0) 0.0; curv = Affine }

let add_curv a b =
  match (a, b) with
  | Affine, c | c, Affine -> c
  | Convex, Convex -> Convex
  | Concave, Concave -> Concave
  | Convex, Concave | Concave, Convex ->
      reject "sum of convex and concave expressions has unknown curvature"

let add e1 e2 =
  { quad = Quad.add e1.quad e2.quad; curv = add_curv e1.curv e2.curv }

let flip = function Affine -> Affine | Convex -> Concave | Concave -> Convex

let neg e = { quad = Quad.scale (-1.0) e.quad; curv = flip e.curv }
let sub e1 e2 = add e1 (neg e2)

let scale c e =
  let curv = if c >= 0.0 then e.curv else flip e.curv in
  { quad = Quad.scale c e.quad; curv }

let square e =
  match e.curv with
  | Affine when Quad.is_affine e.quad ->
      {
        quad =
          Quad.square_of_affine (Quad.linear_part e.quad)
            (Quad.constant_part e.quad);
        curv = Convex;
      }
  | Affine | Convex | Concave -> reject "square of a non-affine expression"

let sum_squares = function
  | [] -> invalid_arg "Expr.sum_squares: empty list"
  | e :: rest -> List.fold_left (fun acc x -> add acc (square x)) (square e) rest

let quad_form p =
  let n = Mat.rows p in
  let q = Quad.quadratic p (Vec.zeros n) 0.0 in
  if not (Quad.hess_is_psd q) then reject "quad_form: matrix is not PSD";
  { quad = q; curv = Convex }

let curvature e = e.curv
let dim e = Quad.dim e.quad
let to_quad e = e.quad
let eval e x = Quad.eval e.quad x

type constr = Quad.t

let leq lhs rhs =
  (match lhs.curv with
  | Affine | Convex -> ()
  | Concave -> reject "leq: left-hand side must be convex or affine");
  (match rhs.curv with
  | Affine | Concave -> ()
  | Convex -> reject "leq: right-hand side must be concave or affine");
  Quad.sub lhs.quad rhs.quad

let geq lhs rhs = leq rhs lhs

let box n i ~lo ~hi =
  if lo > hi then invalid_arg "Expr.box: lo > hi";
  [ leq (const n lo) (var n i); leq (var n i) (const n hi) ]

let constr_quad c = c

let minimize obj constrs =
  (match obj.curv with
  | Affine | Convex -> ()
  | Concave -> reject "minimize: objective must be convex or affine");
  { Barrier.objective = obj.quad; constraints = Array.of_list constrs }

let maximize obj constrs =
  (match obj.curv with
  | Affine | Concave -> ()
  | Convex -> reject "maximize: objective must be concave or affine");
  minimize (neg obj) constrs
