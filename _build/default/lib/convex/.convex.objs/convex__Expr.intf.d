lib/convex/expr.mli: Barrier Linalg Mat Quad Vec
