lib/convex/kkt.mli: Barrier Format Linalg Vec
