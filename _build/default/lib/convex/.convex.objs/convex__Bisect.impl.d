lib/convex/bisect.ml: Float
