lib/convex/newton.mli: Linalg Mat Vec
