lib/convex/bisect.mli:
