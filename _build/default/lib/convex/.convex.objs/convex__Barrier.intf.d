lib/convex/barrier.mli: Linalg Newton Quad Vec
