lib/convex/solve.mli: Barrier Format Kkt Linalg Vec
