lib/convex/quad.ml: Array Chol Format Linalg Mat Vec
