lib/convex/expr.ml: Array Barrier Format Linalg List Mat Quad Vec
