lib/convex/solve.ml: Barrier Float Format Kkt Linalg Phase1 Quad Vec
