lib/convex/linprog.mli: Barrier Linalg Mat Vec
