lib/convex/newton.ml: Chol Linalg Mat Vec
