lib/convex/barrier.ml: Array Linalg Mat Newton Quad Vec
