lib/convex/linprog.ml: Array Barrier Linalg Mat Quad Solve Vec
