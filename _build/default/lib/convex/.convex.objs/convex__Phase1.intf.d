lib/convex/phase1.mli: Barrier Linalg Quad Vec
