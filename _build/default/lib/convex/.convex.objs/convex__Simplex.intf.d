lib/convex/simplex.mli: Linalg Mat Vec
