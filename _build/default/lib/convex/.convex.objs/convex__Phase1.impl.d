lib/convex/phase1.ml: Array Barrier Float Linalg Mat Quad Vec
