lib/convex/kkt.ml: Array Barrier Float Format Linalg Quad Vec
