lib/convex/simplex.ml: Array Float Hashtbl Linalg List Mat Option Seq Vec
