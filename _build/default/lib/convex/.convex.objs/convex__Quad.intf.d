lib/convex/quad.mli: Format Linalg Mat Vec
