(** Independent 3-layer HotSpot-style thermal model for validation.

    Per floorplan block, three stacked nodes — die, heat spreader,
    heat sink — with lateral conduction inside the die and spreader
    layers, vertical conduction up the stack, and convection from the
    sink to ambient.  The paper validated its simulator "using the
    thermal models from the Hotspot simulator"; this module plays that
    role: a structurally different model whose steady-state
    predictions must agree with {!Rc_model} once the latter's lumped
    vertical conductance is matched (see
    {!effective_vertical_conductance_per_area}). *)

open Linalg

type params = {
  die_thickness : float;
  die_conductivity : float;
  die_heat_capacity : float;  (** volumetric, J/(m^3 K) *)
  spreader_thickness : float;
  spreader_conductivity : float;  (** copper *)
  spreader_heat_capacity : float;
  interface_conductance_per_area : float;
      (** Thermal interface material, die to spreader. *)
  sink_thickness : float;
  sink_conductivity : float;
  sink_heat_capacity : float;
  convection_per_area : float;  (** Sink to ambient, W/(K m^2). *)
  ambient : float;
}

val default_params : params

type t

val build : ?params:params -> Floorplan.t -> t

val size : t -> int
(** Total node count, [3 * blocks]. *)

val die_node : t -> int -> int
val spreader_node : t -> int -> int
val sink_node : t -> int -> int

val steady_state : t -> Vec.t -> Vec.t
(** [steady_state m p]: equilibrium over all [3n] nodes given
    per-block power [p] (length [n], injected in the die layer). *)

val die_steady_state : t -> Vec.t -> Vec.t
(** The die-layer slice of {!steady_state} (length [n]). *)

val max_monotone_dt : t -> float

val step : t -> dt:float -> Vec.t -> Vec.t -> Vec.t
(** [step m ~dt state p]: one explicit-Euler step over all [3n]
    nodes. *)

val effective_vertical_conductance_per_area : params -> float
(** The series combination of interface, spreader, sink and convection
    resistances per unit area: the value {!Rc_model.params}'
    [vertical_conductance_per_area] should take for the two models to
    agree. *)

val vertical_chain_check : params -> area:float -> power:float -> float
(** Steady die temperature of a single isolated block (no lateral
    neighbours) solved with the tridiagonal solver; used to
    cross-check {!steady_state} in tests. *)
