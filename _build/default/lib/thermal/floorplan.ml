type kind = Core | Cache | Buffer | Interconnect | Other

type block = {
  name : string;
  kind : kind;
  x : float;
  y : float;
  width : float;
  height : float;
}

type t = { blocks : block array; by_name : (string, int) Hashtbl.t }

let geom_eps = 1e-9

let area b = b.width *. b.height

let center b = (b.x +. (0.5 *. b.width), b.y +. (0.5 *. b.height))

let center_distance b1 b2 =
  let x1, y1 = center b1 and x2, y2 = center b2 in
  sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))

(* Overlap of intervals [a1, a2] and [b1, b2]. *)
let interval_overlap a1 a2 b1 b2 =
  Float.max 0.0 (Float.min a2 b2 -. Float.max a1 b1)

let overlap_area b1 b2 =
  interval_overlap b1.x (b1.x +. b1.width) b2.x (b2.x +. b2.width)
  *. interval_overlap b1.y (b1.y +. b1.height) b2.y (b2.y +. b2.height)

let shared_edge b1 b2 =
  let x_ov = interval_overlap b1.x (b1.x +. b1.width) b2.x (b2.x +. b2.width) in
  let y_ov =
    interval_overlap b1.y (b1.y +. b1.height) b2.y (b2.y +. b2.height)
  in
  let touch_x =
    Float.abs (b1.x +. b1.width -. b2.x) < geom_eps
    || Float.abs (b2.x +. b2.width -. b1.x) < geom_eps
  in
  let touch_y =
    Float.abs (b1.y +. b1.height -. b2.y) < geom_eps
    || Float.abs (b2.y +. b2.height -. b1.y) < geom_eps
  in
  if touch_x && y_ov > geom_eps then y_ov
  else if touch_y && x_ov > geom_eps then x_ov
  else 0.0

let make block_list =
  let blocks = Array.of_list block_list in
  let by_name = Hashtbl.create (Array.length blocks) in
  Array.iteri
    (fun i b ->
      if b.width <= 0.0 || b.height <= 0.0 then
        invalid_arg
          (Printf.sprintf "Floorplan.make: block %S has non-positive size"
             b.name);
      if Hashtbl.mem by_name b.name then
        invalid_arg
          (Printf.sprintf "Floorplan.make: duplicate block name %S" b.name);
      Hashtbl.add by_name b.name i)
    blocks;
  let n = Array.length blocks in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if overlap_area blocks.(i) blocks.(j) > 1e-12 then
        invalid_arg
          (Printf.sprintf "Floorplan.make: blocks %S and %S overlap"
             blocks.(i).name blocks.(j).name)
    done
  done;
  { blocks; by_name }

let grid ?(kind = fun _ _ -> Core) ~rows ~cols ~cell_width ~cell_height () =
  if rows < 1 || cols < 1 then invalid_arg "Floorplan.grid: empty grid";
  let cells =
    List.concat
      (List.init rows (fun r ->
           List.init cols (fun c ->
               {
                 name = Printf.sprintf "R%dC%d" r c;
                 kind = kind r c;
                 x = float_of_int c *. cell_width;
                 y = float_of_int r *. cell_height;
                 width = cell_width;
                 height = cell_height;
               })))
  in
  make cells

let blocks fp = Array.copy fp.blocks
let size fp = Array.length fp.blocks
let index_of fp name = Hashtbl.find fp.by_name name

let block_of fp i =
  if i < 0 || i >= size fp then invalid_arg "Floorplan.block_of: out of range";
  fp.blocks.(i)

let neighbours fp i =
  let b = block_of fp i in
  let acc = ref [] in
  for j = size fp - 1 downto 0 do
    if j <> i then begin
      let len = shared_edge b fp.blocks.(j) in
      if len > geom_eps then acc := (j, len) :: !acc
    end
  done;
  !acc

let cores fp =
  let acc = ref [] in
  for i = size fp - 1 downto 0 do
    if fp.blocks.(i).kind = Core then acc := i :: !acc
  done;
  Array.of_list !acc

let total_area fp = Array.fold_left (fun acc b -> acc +. area b) 0.0 fp.blocks

let bounding_box fp =
  if size fp = 0 then invalid_arg "Floorplan.bounding_box: empty floorplan";
  Array.fold_left
    (fun (xmin, ymin, xmax, ymax) b ->
      ( Float.min xmin b.x,
        Float.min ymin b.y,
        Float.max xmax (b.x +. b.width),
        Float.max ymax (b.y +. b.height) ))
    (infinity, infinity, neg_infinity, neg_infinity)
    fp.blocks

let pp ppf fp =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun b ->
      Format.fprintf ppf "%-12s (%.1f, %.1f) %.1fx%.1f mm@," b.name
        (b.x *. 1e3) (b.y *. 1e3) (b.width *. 1e3) (b.height *. 1e3))
    fp.blocks;
  Format.fprintf ppf "@]"
