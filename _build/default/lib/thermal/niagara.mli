(** The Sun Niagara-like 8-core platform of the paper's evaluation
    (its Fig. 5), with calibrated thermal parameters.

    Two rows of four cores (P1-P4, P5-P8) flanked by L2 caches above
    and below, L2 buffers at the row ends and a crossbar/interconnect
    strip between the rows.  The row-end cores (P1, P4, P5, P8) have a
    single hot core neighbour and sit next to cool structures, so they
    can dissipate more — the asymmetry behind the paper's Figs. 9-10.

    Physical anchors from the paper: 1 GHz maximum core frequency,
    4 W maximum core power, non-core power about 30% of total core
    power, thermal step 0.4 ms.  The package conductance is calibrated
    so that all cores at maximum power settle at {!target_peak}
    (above [tmax = 100] so that thermal control is actually needed,
    as in the paper's Figs. 1-2 where uncontrolled cores reach
    ~120 degrees). *)

open Linalg

val fmax : float
(** Maximum core frequency, Hz (1e9). *)

val core_pmax : float
(** Core power at [fmax], Watts (4.0). *)

val target_peak : float
(** Calibration anchor: hottest steady-state node with all cores at
    [core_pmax] (122 degrees Celsius). *)

val dt : float
(** Thermal integration step, seconds (0.4e-3, as in the paper). *)

val n_cores : int
(** 8. *)

val floorplan : unit -> Floorplan.t
(** 17 blocks: 8 cores, 4 L2 caches, 2 L2 buffers, 1 crossbar and
    2 DRAM/IO bridge blocks at the remaining row ends. *)

val params : unit -> Rc_model.params
(** Calibrated parameters (computed once, then cached). *)

val model : unit -> Rc_model.t

val fixed_power : Floorplan.t -> Vec.t
(** Static power of the non-core blocks (cores are zero here);
    totals ~30% of the full-load core power. *)

val core_power_of_frequency : float -> float
(** The paper's Eq. 2: [pmax * f^2 / fmax^2].  Clamps negative
    frequencies to zero. *)

val power_vector : Floorplan.t -> core_power:Vec.t -> Vec.t
(** Embed 8 per-core powers into a full node power vector, adding the
    fixed non-core power. *)

val core_nodes : Floorplan.t -> int array
(** Node indices of P1..P8, in order. *)
