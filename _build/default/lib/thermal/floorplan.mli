(** Chip floorplans: rectangular blocks with geometric adjacency.

    A floorplan is a list of named, axis-aligned rectangular blocks
    (dimensions in meters).  The RC thermal model derives lateral heat
    conduction from the length of the edge two blocks share, so the
    only geometric primitives needed are areas, center distances and
    shared edge lengths. *)

type kind = Core | Cache | Buffer | Interconnect | Other

type block = {
  name : string;
  kind : kind;
  x : float;  (** Left edge, meters. *)
  y : float;  (** Bottom edge, meters. *)
  width : float;
  height : float;
}

type t

val make : block list -> t
(** Build a floorplan.  Raises [Invalid_argument] if two blocks
    overlap (beyond a tiny tolerance), a block has non-positive
    dimensions, or two blocks share a name. *)

val grid :
  ?kind:(int -> int -> kind) ->
  rows:int ->
  cols:int ->
  cell_width:float ->
  cell_height:float ->
  unit ->
  t
(** A regular [rows x cols] mesh of blocks named ["R<r>C<c>"], for
    fine-grained thermal studies (where the sparse solvers earn their
    keep).  [kind] defaults to every cell being a [Core]. *)

val blocks : t -> block array
val size : t -> int

val index_of : t -> string -> int
(** Raises [Not_found] for an unknown block name. *)

val block_of : t -> int -> block

val area : block -> float

val center : block -> float * float

val center_distance : block -> block -> float

val shared_edge : block -> block -> float
(** Length of the common boundary of two blocks; [0.0] when they only
    touch at a corner or not at all. *)

val neighbours : t -> int -> (int * float) list
(** [neighbours fp i] lists the indices of blocks sharing an edge with
    block [i], with the shared length. *)

val cores : t -> int array
(** Indices of [Core] blocks, in declaration order. *)

val total_area : t -> float

val bounding_box : t -> float * float * float * float
(** [(xmin, ymin, xmax, ymax)]. *)

val pp : Format.formatter -> t -> unit
