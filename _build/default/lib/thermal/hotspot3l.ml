open Linalg

type params = {
  die_thickness : float;
  die_conductivity : float;
  die_heat_capacity : float;
  spreader_thickness : float;
  spreader_conductivity : float;
  spreader_heat_capacity : float;
  interface_conductance_per_area : float;
  sink_thickness : float;
  sink_conductivity : float;
  sink_heat_capacity : float;
  convection_per_area : float;
  ambient : float;
}

let default_params =
  {
    die_thickness = 0.5e-3;
    die_conductivity = 100.0;
    die_heat_capacity = 1.75e6;
    spreader_thickness = 1.0e-3;
    spreader_conductivity = 400.0;
    spreader_heat_capacity = 3.55e6;
    interface_conductance_per_area = 3.0e4;
    sink_thickness = 6.9e-3;
    sink_conductivity = 240.0;
    sink_heat_capacity = 2.42e6;
    convection_per_area = 4.0e3;
    ambient = 27.0;
  }

type t = {
  fp : Floorplan.t;
  prm : params;
  n : int;  (* blocks *)
  g : Mat.t;  (* 3n x 3n conductance matrix (Laplacian + ambient) *)
  g_amb : Vec.t;  (* ambient conductance per node (sink layer only) *)
  cap : Vec.t;  (* heat capacity per node *)
}

let die_node _ i = i
let spreader_node m i = m.n + i
let sink_node m i = (2 * m.n) + i

(* Vertical conductance per unit area between two stacked layers:
   half-thickness resistance of each layer in series (plus the
   interface material between die and spreader). *)
let layer_half_resistance_per_area thickness conductivity =
  0.5 *. thickness /. conductivity

let die_spreader_g_per_area p =
  1.0
  /. (layer_half_resistance_per_area p.die_thickness p.die_conductivity
     +. (1.0 /. p.interface_conductance_per_area)
     +. layer_half_resistance_per_area p.spreader_thickness
          p.spreader_conductivity)

let spreader_sink_g_per_area p =
  1.0
  /. (layer_half_resistance_per_area p.spreader_thickness
        p.spreader_conductivity
     +. layer_half_resistance_per_area p.sink_thickness p.sink_conductivity)

let sink_ambient_g_per_area p =
  1.0
  /. (layer_half_resistance_per_area p.sink_thickness p.sink_conductivity
     +. (1.0 /. p.convection_per_area))

let effective_vertical_conductance_per_area p =
  1.0
  /. ((1.0 /. die_spreader_g_per_area p)
     +. (1.0 /. spreader_sink_g_per_area p)
     +. (1.0 /. sink_ambient_g_per_area p))

let build ?(params = default_params) fp =
  let n = Floorplan.size fp in
  if n = 0 then invalid_arg "Hotspot3l.build: empty floorplan";
  let total = 3 * n in
  let lateral = Mat.zeros total total in
  (* Lateral conduction in the die and spreader layers (the sink is
     treated as laterally well-mixed fins: we give it the spreader's
     adjacency with the sink conductivity). *)
  let add_lateral layer_offset conductivity thickness =
    for i = 0 to n - 1 do
      let bi = Floorplan.block_of fp i in
      List.iter
        (fun (j, shared_len) ->
          let bj = Floorplan.block_of fp j in
          let dist = Floorplan.center_distance bi bj in
          let g = conductivity *. thickness *. shared_len /. dist in
          Mat.set lateral (layer_offset + i) (layer_offset + j) g)
        (Floorplan.neighbours fp i)
    done
  in
  add_lateral 0 params.die_conductivity params.die_thickness;
  add_lateral n params.spreader_conductivity params.spreader_thickness;
  add_lateral (2 * n) params.sink_conductivity params.sink_thickness;
  (* Vertical conduction. *)
  for i = 0 to n - 1 do
    let a = Floorplan.area (Floorplan.block_of fp i) in
    let g_ds = die_spreader_g_per_area params *. a in
    let g_ss = spreader_sink_g_per_area params *. a in
    Mat.set lateral i (n + i) g_ds;
    Mat.set lateral (n + i) i g_ds;
    Mat.set lateral (n + i) ((2 * n) + i) g_ss;
    Mat.set lateral ((2 * n) + i) (n + i) g_ss
  done;
  let g_amb =
    Vec.init total (fun k ->
        if k >= 2 * n then
          sink_ambient_g_per_area params
          *. Floorplan.area (Floorplan.block_of fp (k - (2 * n)))
        else 0.0)
  in
  let cap =
    Vec.init total (fun k ->
        let block = Floorplan.block_of fp (k mod n) in
        let a = Floorplan.area block in
        if k < n then params.die_heat_capacity *. params.die_thickness *. a
        else if k < 2 * n then
          params.spreader_heat_capacity *. params.spreader_thickness *. a
        else params.sink_heat_capacity *. params.sink_thickness *. a)
  in
  let g =
    Mat.init total total (fun i j ->
        if i = j then g_amb.(i) +. Vec.sum (Mat.row lateral i)
        else -.Mat.get lateral i j)
  in
  { fp; prm = params; n; g; g_amb; cap }

let size m = 3 * m.n

let steady_state m p =
  if Vec.dim p <> m.n then invalid_arg "Hotspot3l.steady_state: bad power";
  let total = 3 * m.n in
  let rhs =
    Vec.init total (fun k ->
        let inject = if k < m.n then p.(k) else 0.0 in
        inject +. (m.g_amb.(k) *. m.prm.ambient))
  in
  Lu.solve m.g rhs

let die_steady_state m p = Vec.slice (steady_state m p) 0 m.n

let max_monotone_dt m =
  let total = 3 * m.n in
  let best = ref infinity in
  for i = 0 to total - 1 do
    best := Float.min !best (m.cap.(i) /. Mat.get m.g i i)
  done;
  !best

let step m ~dt state p =
  let total = 3 * m.n in
  if Vec.dim state <> total then invalid_arg "Hotspot3l.step: bad state";
  if Vec.dim p <> m.n then invalid_arg "Hotspot3l.step: bad power";
  if dt > max_monotone_dt m then
    invalid_arg "Hotspot3l.step: dt exceeds the monotone limit";
  (* dT/dt = C^{-1} (-G T + inject + g_amb Ta) *)
  let flow = Mat.mul_vec m.g state in
  Vec.init total (fun k ->
      let inject = if k < m.n then p.(k) else 0.0 in
      state.(k)
      +. dt
         *. (-.flow.(k) +. inject +. (m.g_amb.(k) *. m.prm.ambient))
         /. m.cap.(k))

(* Single isolated block: vertical chain die-spreader-sink-ambient is
   a 3-node tridiagonal system. *)
let vertical_chain_check p ~area ~power =
  let g_ds = die_spreader_g_per_area p *. area in
  let g_ss = spreader_sink_g_per_area p *. area in
  let g_sa = sink_ambient_g_per_area p *. area in
  let diag = [| g_ds; g_ds +. g_ss; g_ss +. g_sa |] in
  let lower = [| -.g_ds; -.g_ss |] in
  let upper = [| -.g_ds; -.g_ss |] in
  let rhs = [| power; 0.0; g_sa *. p.ambient |] in
  let x = Tridiag.solve ~lower ~diag ~upper ~rhs in
  x.(0)
