open Linalg

let peak_steady params floorplan power =
  let model = Rc_model.build ~params floorplan in
  Vec.max (Rc_model.steady_state model power)

let tune_vertical_conductance ?(lo = 1e2) ?(hi = 1e6) ?(tol = 1e-2) ~params
    ~floorplan ~power target_peak =
  let with_g g = { params with Rc_model.vertical_conductance_per_area = g } in
  let peak g = peak_steady (with_g g) floorplan power in
  (* Peak temperature decreases monotonically in the conductance. *)
  if peak lo < target_peak then
    invalid_arg "Calibrate.tune_vertical_conductance: target too hot";
  if peak hi > target_peak then
    invalid_arg "Calibrate.tune_vertical_conductance: target too cold";
  let rec go lo hi =
    let mid = sqrt (lo *. hi) in
    let t = peak mid in
    if Float.abs (t -. target_peak) <= tol then with_g mid
    else if t > target_peak then go mid hi
    else go lo mid
  in
  go lo hi

type fitted = {
  step : Mat.t;
  injection : Vec.t;
  drive : Vec.t;
  max_residual : float;
}

let fit_discrete ~temperatures ~powers =
  let samples = Mat.rows powers in
  let n = Mat.cols temperatures in
  if Mat.cols powers <> n then
    invalid_arg "Calibrate.fit_discrete: power/temperature width mismatch";
  if Mat.rows temperatures <> samples + 1 then
    invalid_arg "Calibrate.fit_discrete: need one more temperature row";
  if samples < n + 2 then
    invalid_arg "Calibrate.fit_discrete: not enough samples";
  let step = Mat.zeros n n in
  let injection = Vec.zeros n in
  let drive = Vec.zeros n in
  let max_residual = ref 0.0 in
  (* One regression per node: unknowns are the node's row of A, its
     b_i, and its c_i. *)
  for i = 0 to n - 1 do
    let design =
      Mat.init samples (n + 2) (fun k j ->
          if j < n then Mat.get temperatures k j
          else if j = n then Mat.get powers k i
          else 1.0)
    in
    let target = Vec.init samples (fun k -> Mat.get temperatures (k + 1) i) in
    let coeffs = Qr.solve_least_squares design target in
    for j = 0 to n - 1 do
      Mat.set step i j coeffs.(j)
    done;
    injection.(i) <- coeffs.(n);
    drive.(i) <- coeffs.(n + 1);
    let residual = Qr.residual_norm design coeffs target in
    max_residual := Float.max !max_residual residual
  done;
  { step; injection; drive; max_residual = !max_residual }
