lib/thermal/rc_model.ml: Array Float Floorplan Linalg List Lu Mat Printf Sparse Vec
