lib/thermal/rc_model.mli: Floorplan Linalg Mat Sparse Vec
