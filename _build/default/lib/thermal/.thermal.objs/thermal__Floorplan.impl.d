lib/thermal/floorplan.ml: Array Float Format Hashtbl List Printf
