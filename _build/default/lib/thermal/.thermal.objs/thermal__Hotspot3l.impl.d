lib/thermal/hotspot3l.ml: Array Float Floorplan Linalg List Lu Mat Tridiag Vec
