lib/thermal/niagara.ml: Array Calibrate Float Floorplan Linalg List Printf Rc_model Vec
