lib/thermal/transient.mli: Linalg Mat Rc_model Vec
