lib/thermal/transient.ml: Array Expm Float Linalg Mat Rc_model Vec
