lib/thermal/calibrate.ml: Array Float Linalg Mat Qr Rc_model Vec
