lib/thermal/calibrate.mli: Floorplan Linalg Mat Rc_model Vec
