lib/thermal/niagara.mli: Floorplan Linalg Rc_model Vec
