lib/thermal/hotspot3l.mli: Floorplan Linalg Vec
