(** Thermal model calibration and identification.

    Two tools:
    - {!tune_vertical_conductance} adjusts the package conductance so
      a reference workload hits a target peak steady temperature —
      how we anchor the Niagara model's absolute numbers; and
    - {!fit_discrete} identifies the paper's Eq. 1 coefficients
      [(a_ij, b_i)] from a temperature/power trace by per-row least
      squares (QR), the route one would take against real sensor
      logs. *)

open Linalg

val tune_vertical_conductance :
  ?lo:float ->
  ?hi:float ->
  ?tol:float ->
  params:Rc_model.params ->
  floorplan:Floorplan.t ->
  power:Vec.t ->
  float ->
  Rc_model.params
(** [tune_vertical_conductance ~params ~floorplan ~power target_peak]
    bisects [vertical_conductance_per_area] in [[lo, hi]] (defaults
    [1e2, 1e6]) until the hottest steady-state node temperature under
    [power] is within [tol] (default 0.01 degrees) of [target_peak].
    Raises [Invalid_argument] when the target is outside the
    achievable bracket. *)

type fitted = {
  step : Mat.t;  (** Identified [A]. *)
  injection : Vec.t;  (** Identified [b]. *)
  drive : Vec.t;  (** Identified ambient forcing [c]. *)
  max_residual : float;
      (** Worst per-sample prediction error of the fit. *)
}

val fit_discrete :
  temperatures:Mat.t -> powers:Mat.t -> fitted
(** [fit_discrete ~temperatures ~powers] fits
    [t_{k+1,i} = sum_j A_ij t_{k,j} + b_i p_{k,i} + c_i] by least
    squares.  [temperatures] is [(K+1) x n], [powers] is [K x n]; the
    trace must be exciting enough for the regression to be full rank
    (e.g. varying powers), otherwise [Qr.Rank_deficient] is raised. *)
