(** Arrival processes for task traces.

    Three models: Poisson (web-style independent requests), bursty
    on/off-modulated Poisson (consolidated server traffic — the
    pattern the paper blames for Basic-DFS violations even under good
    task assignment), and jittered-periodic (multimedia frame
    processing). *)

type t =
  | Poisson
  | Bursty of {
      burst_factor : float;
          (** Arrival-rate multiplier during bursts (> 1). *)
      mean_on : float;  (** Mean burst duration, seconds. *)
      mean_off : float;  (** Mean quiet duration, seconds. *)
    }
  | Periodic of { jitter : float  (** Fraction of the period, in [0,1). *) }

val generate_times :
  t -> rng:Rng.t -> rate:float -> count:int -> float array
(** [generate_times p ~rng ~rate ~count] produces [count] increasing
    arrival instants whose long-run average rate is [rate] (tasks per
    second).  Raises [Invalid_argument] for non-positive [rate] or
    invalid process parameters. *)
