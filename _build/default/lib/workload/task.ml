type benchmark = Web | Multimedia | Compute

type t = { id : int; arrival : float; work : float; benchmark : benchmark }

let benchmark_name = function
  | Web -> "web"
  | Multimedia -> "multimedia"
  | Compute -> "compute"

let service_time task ~frequency ~fmax =
  if frequency <= 0.0 then
    invalid_arg "Task.service_time: non-positive frequency";
  task.work *. fmax /. frequency

let compare_by_arrival t1 t2 = Float.compare t1.arrival t2.arrival

let pp ppf t =
  Format.fprintf ppf "task %d (%s, %.2f ms work, arrives %.3f s)" t.id
    (benchmark_name t.benchmark) (t.work *. 1e3) t.arrival
