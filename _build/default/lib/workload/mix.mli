(** Benchmark mixes: named workload scenarios.

    Each mix blends benchmark classes (with per-class task-length
    ranges inside the paper's 1-10 ms envelope), fixes an arrival
    process and a target utilization — the fraction of the machine's
    total capacity at maximum frequency that the trace demands on
    average.  The four predefined mixes model the paper's evaluation
    workloads. *)

type component = {
  benchmark : Task.benchmark;
  weight : float;  (** Relative share of tasks; normalized internally. *)
  work_lo : float;  (** Shortest task of the class, seconds at fmax. *)
  work_hi : float;
}

type t = {
  name : string;
  components : component list;
  process : Arrival.t;
  utilization : float;
      (** Offered load as a fraction of [n_cores * fmax] capacity. *)
}

val validate : t -> unit
(** Raises [Invalid_argument] on empty components, non-positive
    weights, inverted work ranges or utilization outside (0, 1]. *)

val mean_work : t -> float
(** Weighted mean task length, seconds. *)

val arrival_rate : t -> n_cores:int -> float
(** Task arrival rate (tasks/s) that realizes [utilization] on
    [n_cores] cores: [utilization * n_cores / mean_work]. *)

val sample_task :
  t -> rng:Rng.t -> id:int -> arrival:float -> Task.t
(** Draw a task class (by weight) and a length (uniform in the class
    range). *)

(** {1 The paper's workloads} *)

val web : t
(** Short web/transactional requests, Poisson arrivals, ~45% load. *)

val multimedia : t
(** Frame-sized multimedia jobs, jittered-periodic arrivals,
    ~55% load. *)

val compute_intensive : t
(** The "most computation intensive benchmark": long tasks, bursty
    arrivals, ~85% load (drives Basic-DFS above [tmax] up to 40% of
    the time in the paper's Fig. 6b). *)

val paper_mix : t
(** The Fig. 6a blend of web, multimedia and compute tasks with
    moderate burstiness, ~60% load. *)

val by_name : string -> t
(** Look up one of the predefined mixes; raises [Not_found]. *)

val all : t list
