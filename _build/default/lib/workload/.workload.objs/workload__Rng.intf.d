lib/workload/rng.mli:
