lib/workload/trace.mli: Format Mix Task
