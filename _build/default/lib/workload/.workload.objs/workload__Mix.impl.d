lib/workload/mix.ml: Arrival List Printf Rng Task
