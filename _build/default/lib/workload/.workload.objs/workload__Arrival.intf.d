lib/workload/arrival.mli: Rng
