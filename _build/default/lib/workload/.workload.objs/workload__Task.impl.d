lib/workload/task.ml: Float Format
