lib/workload/mix.mli: Arrival Rng Task
