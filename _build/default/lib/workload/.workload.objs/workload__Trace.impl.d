lib/workload/trace.ml: Array Arrival Float Format List Mix Rng Stdlib Task
