lib/workload/arrival.ml: Array Rng
