(** Task traces: reproducible workload inputs for the simulator.

    The paper's experiments use "a large trace with around 60,000
    tasks, modeling several hundred seconds of actual system
    execution"; {!generate} produces such traces from a {!Mix} and a
    seed. *)

type t = {
  tasks : Task.t array;  (** Sorted by arrival time. *)
  mix_name : string;
  horizon : float;  (** Arrival time of the last task, seconds. *)
}

val generate : ?n_cores:int -> seed:int64 -> n_tasks:int -> Mix.t -> t
(** [generate ~seed ~n_tasks mix] draws [n_tasks] tasks.  [n_cores]
    (default 8) scales the arrival rate so the trace's offered load
    matches the mix's target utilization on that machine. *)

type statistics = {
  count : int;
  mean_work : float;
  max_work : float;
  total_work : float;
  mean_interarrival : float;
  offered_utilization : float;
      (** [total_work / (horizon * n_cores)]: the realized load. *)
}

val statistics : t -> n_cores:int -> statistics

val tasks_in_window : t -> lo:float -> hi:float -> Task.t list
(** Tasks with arrival in [[lo, hi)], in order. *)

val pp_statistics : Format.formatter -> statistics -> unit
