(** Tasks: the unit of work the multi-core system executes.

    Following the paper's definitions: the workload of a task is the
    time it takes at the maximum core frequency; benchmark task
    lengths are 1-10 ms, much shorter than the 100 ms DFS window. *)

type benchmark = Web | Multimedia | Compute

type t = {
  id : int;
  arrival : float;  (** Seconds from trace start. *)
  work : float;  (** Execution time at the maximum frequency, seconds. *)
  benchmark : benchmark;
}

val benchmark_name : benchmark -> string

val service_time : t -> frequency:float -> fmax:float -> float
(** Time to finish the whole task at a constant [frequency]:
    [work * fmax / frequency].  Raises [Invalid_argument] for a
    non-positive frequency (a stopped core makes no progress). *)

val compare_by_arrival : t -> t -> int

val pp : Format.formatter -> t -> unit
