type t =
  | Poisson
  | Bursty of { burst_factor : float; mean_on : float; mean_off : float }
  | Periodic of { jitter : float }

let generate_times process ~rng ~rate ~count =
  if rate <= 0.0 then invalid_arg "Arrival.generate_times: non-positive rate";
  if count < 0 then invalid_arg "Arrival.generate_times: negative count";
  match process with
  | Poisson ->
      let t = ref 0.0 in
      Array.init count (fun _ ->
          t := !t +. Rng.exponential rng ~rate;
          !t)
  | Periodic { jitter } ->
      if jitter < 0.0 || jitter >= 1.0 then
        invalid_arg "Arrival.generate_times: jitter outside [0,1)";
      let period = 1.0 /. rate in
      let t = ref 0.0 in
      Array.init count (fun _ ->
          let j = 1.0 +. (jitter *. (Rng.float rng 1.0 -. 0.5)) in
          t := !t +. (period *. j);
          !t)
  | Bursty { burst_factor; mean_on; mean_off } ->
      if burst_factor <= 1.0 then
        invalid_arg "Arrival.generate_times: burst_factor must exceed 1";
      if mean_on <= 0.0 || mean_off <= 0.0 then
        invalid_arg "Arrival.generate_times: non-positive phase duration";
      let on_fraction = mean_on /. (mean_on +. mean_off) in
      if burst_factor *. on_fraction >= 1.0 then
        invalid_arg
          "Arrival.generate_times: burst_factor too large for the on \
           fraction (off-phase rate would be negative)";
      let on_rate = burst_factor *. rate in
      let off_rate =
        rate *. (1.0 -. (burst_factor *. on_fraction)) /. (1.0 -. on_fraction)
      in
      (* Alternate exponentially distributed on/off phases; inside a
         phase, arrivals are Poisson at the phase rate.  Phases with
         rate zero simply skip time. *)
      let times = Array.make count 0.0 in
      let t = ref 0.0 in
      let produced = ref 0 in
      let in_burst = ref (Rng.bernoulli rng ~p:on_fraction) in
      while !produced < count do
        let mean = if !in_burst then mean_on else mean_off in
        let phase_rate = if !in_burst then on_rate else off_rate in
        let phase_end = !t +. Rng.exponential rng ~rate:(1.0 /. mean) in
        if phase_rate > 0.0 then begin
          let next = ref (!t +. Rng.exponential rng ~rate:phase_rate) in
          while !produced < count && !next < phase_end do
            times.(!produced) <- !next;
            incr produced;
            next := !next +. Rng.exponential rng ~rate:phase_rate
          done
        end;
        t := phase_end;
        in_burst := not !in_burst
      done;
      times
