(** Deterministic pseudo-random numbers (splitmix64).

    All trace generation goes through this generator so that every
    experiment is exactly reproducible from a seed, independent of the
    OCaml stdlib's [Random] implementation details. *)

type t

val create : int64 -> t
(** Seed a fresh generator. *)

val split : t -> t
(** Derive an independent generator (for parallel streams). *)

val next_int64 : t -> int64
(** Uniform over all 64-bit values; advances the state. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [[0, bound)].  Requires
    [bound > 0]. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [[0, bound)].  Requires
    [bound > 0]. *)

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> rate:float -> float
(** Exponentially distributed with the given rate (mean [1/rate]). *)

val bernoulli : t -> p:float -> bool
