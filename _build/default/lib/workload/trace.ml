type t = { tasks : Task.t array; mix_name : string; horizon : float }

let generate ?(n_cores = 8) ~seed ~n_tasks mix =
  Mix.validate mix;
  if n_tasks <= 0 then invalid_arg "Trace.generate: need at least one task";
  let rng = Rng.create seed in
  let rate = Mix.arrival_rate mix ~n_cores in
  let times =
    Arrival.generate_times mix.Mix.process ~rng ~rate ~count:n_tasks
  in
  let tasks =
    Array.mapi (fun id arrival -> Mix.sample_task mix ~rng ~id ~arrival) times
  in
  (* Arrival generators produce increasing times already; sort
     defensively so downstream code may rely on the invariant. *)
  Array.sort Task.compare_by_arrival tasks;
  { tasks; mix_name = mix.Mix.name; horizon = times.(n_tasks - 1) }

type statistics = {
  count : int;
  mean_work : float;
  max_work : float;
  total_work : float;
  mean_interarrival : float;
  offered_utilization : float;
}

let statistics trace ~n_cores =
  if n_cores <= 0 then invalid_arg "Trace.statistics: non-positive cores";
  let n = Array.length trace.tasks in
  let total_work =
    Array.fold_left (fun acc t -> acc +. t.Task.work) 0.0 trace.tasks
  in
  let max_work =
    Array.fold_left (fun acc t -> Float.max acc t.Task.work) 0.0 trace.tasks
  in
  {
    count = n;
    mean_work = total_work /. float_of_int n;
    max_work;
    total_work;
    mean_interarrival = trace.horizon /. float_of_int (Stdlib.max 1 (n - 1));
    offered_utilization =
      total_work /. (trace.horizon *. float_of_int n_cores);
  }

let tasks_in_window trace ~lo ~hi =
  Array.to_list trace.tasks
  |> List.filter (fun t -> t.Task.arrival >= lo && t.Task.arrival < hi)

let pp_statistics ppf s =
  Format.fprintf ppf
    "%d tasks, mean work %.2f ms (max %.2f), mean interarrival %.2f ms, \
     offered utilization %.1f%%"
    s.count (s.mean_work *. 1e3) (s.max_work *. 1e3)
    (s.mean_interarrival *. 1e3)
    (100.0 *. s.offered_utilization)
