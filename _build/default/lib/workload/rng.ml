(* splitmix64 (Steele, Lea & Flood): tiny state, excellent statistical
   quality for simulation workloads, trivially splittable. *)
type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

(* Uniform in [0, 1): use the top 53 bits. *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  if bound <= 0.0 then invalid_arg "Rng.float: non-positive bound";
  unit_float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Rejection-free modulo is fine for simulation purposes. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1)
                  (Int64.of_int bound))

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. (unit_float t *. (hi -. lo))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: non-positive rate";
  -.log (1.0 -. unit_float t) /. rate

let bernoulli t ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Rng.bernoulli: p outside [0,1]";
  unit_float t < p
