type component = {
  benchmark : Task.benchmark;
  weight : float;
  work_lo : float;
  work_hi : float;
}

type t = {
  name : string;
  components : component list;
  process : Arrival.t;
  utilization : float;
}

let validate mix =
  if mix.components = [] then
    invalid_arg (Printf.sprintf "Mix %S has no components" mix.name);
  List.iter
    (fun c ->
      if c.weight <= 0.0 then
        invalid_arg (Printf.sprintf "Mix %S: non-positive weight" mix.name);
      if c.work_lo <= 0.0 || c.work_hi < c.work_lo then
        invalid_arg (Printf.sprintf "Mix %S: bad work range" mix.name))
    mix.components;
  if mix.utilization <= 0.0 || mix.utilization > 1.0 then
    invalid_arg (Printf.sprintf "Mix %S: utilization outside (0,1]" mix.name)

let total_weight mix =
  List.fold_left (fun acc c -> acc +. c.weight) 0.0 mix.components

let mean_work mix =
  validate mix;
  let weighted =
    List.fold_left
      (fun acc c -> acc +. (c.weight *. 0.5 *. (c.work_lo +. c.work_hi)))
      0.0 mix.components
  in
  weighted /. total_weight mix

let arrival_rate mix ~n_cores =
  if n_cores <= 0 then invalid_arg "Mix.arrival_rate: non-positive cores";
  mix.utilization *. float_of_int n_cores /. mean_work mix

let sample_task mix ~rng ~id ~arrival =
  let total = total_weight mix in
  let pick = Rng.float rng total in
  let rec choose acc = function
    | [] -> invalid_arg "Mix.sample_task: empty mix"
    | [ c ] -> c
    | c :: rest ->
        let acc = acc +. c.weight in
        if pick < acc then c else choose acc rest
  in
  let c = choose 0.0 mix.components in
  {
    Task.id;
    arrival;
    work = Rng.uniform rng ~lo:c.work_lo ~hi:c.work_hi;
    benchmark = c.benchmark;
  }

let ms x = x *. 1e-3

let web =
  {
    name = "web";
    components =
      [ { benchmark = Task.Web; weight = 1.0; work_lo = ms 1.0;
          work_hi = ms 4.0 } ];
    process = Arrival.Poisson;
    utilization = 0.45;
  }

let multimedia =
  {
    name = "multimedia";
    components =
      [ { benchmark = Task.Multimedia; weight = 1.0; work_lo = ms 5.0;
          work_hi = ms 10.0 } ];
    process = Arrival.Periodic { jitter = 0.3 };
    utilization = 0.55;
  }

let compute_intensive =
  {
    name = "compute";
    components =
      [ { benchmark = Task.Compute; weight = 1.0; work_lo = ms 8.0;
          work_hi = ms 10.0 } ];
    process =
      Arrival.Bursty { burst_factor = 1.5; mean_on = 0.5; mean_off = 0.4 };
    utilization = 0.9;
  }

let paper_mix =
  {
    name = "mix";
    components =
      [
        { benchmark = Task.Web; weight = 0.4; work_lo = ms 1.0;
          work_hi = ms 4.0 };
        { benchmark = Task.Multimedia; weight = 0.35; work_lo = ms 5.0;
          work_hi = ms 10.0 };
        { benchmark = Task.Compute; weight = 0.25; work_lo = ms 8.0;
          work_hi = ms 10.0 };
      ];
    process =
      Arrival.Bursty { burst_factor = 1.5; mean_on = 0.4; mean_off = 0.4 };
    utilization = 0.65;
  }

let all = [ web; multimedia; compute_intensive; paper_mix ]

let by_name name = List.find (fun m -> m.name = name) all
