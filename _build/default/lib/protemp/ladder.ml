open Linalg

type t = { levels : float array (* ascending, positive *) }

let make = function
  | [] -> invalid_arg "Ladder.make: empty ladder"
  | levels ->
      List.iter
        (fun f ->
          if f <= 0.0 then invalid_arg "Ladder.make: non-positive level")
        levels;
      { levels = Array.of_list (List.sort_uniq Float.compare levels) }

let uniform ~fmax ~levels =
  if levels < 1 then invalid_arg "Ladder.uniform: need at least one level";
  if fmax <= 0.0 then invalid_arg "Ladder.uniform: non-positive fmax";
  make
    (List.init levels (fun i ->
         fmax *. float_of_int (i + 1) /. float_of_int levels))

let levels t = Array.copy t.levels

let floor t f =
  (* Largest level <= f, by binary search. *)
  let n = Array.length t.levels in
  if n = 0 || f < t.levels.(0) then 0.0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.levels.(mid) <= f then lo := mid else hi := mid - 1
    done;
    t.levels.(!lo)
  end

let quantize_down t v = Vec.map (floor t) v

let quantize_table t table =
  let tstarts = Table.tstarts table in
  let ftargets = Table.ftargets table in
  let cells =
    Array.mapi
      (fun i _ ->
        Array.mapi
          (fun j _ ->
            match Table.cell table i j with
            | Table.Infeasible -> Table.Infeasible
            | Table.Frequencies f -> Table.Frequencies (quantize_down t f))
          ftargets)
      tstarts
  in
  Table.make ~tstarts ~ftargets cells
