(** Specification of a Pro-Temp optimization instance.

    Gathers the knobs of the paper's convex models: the temperature
    cap, the DFS window the frequencies must survive, whether all
    cores share one frequency (Sec. 5.3's uniform variant) or are
    free (variable), and the optional spatial-gradient term of
    Eqs. 4-5. *)

type variant =
  | Variable  (** Per-core frequencies (the paper's main scheme). *)
  | Uniform  (** One frequency for all cores (Sec. 5.3 baseline). *)

type gradient = {
  weight : float;
      (** Weight of the gradient term added to the power objective
          (Eq. 5). *)
  cap : float option;
      (** Optional hard bound [tgrad] on the spread (Eq. 4). *)
}

type t = {
  tmax : float;  (** Maximum allowed temperature at every step. *)
  dfs_period : float;  (** Length of the window to guarantee. *)
  constraint_stride : int;
      (** Enforce the temperature cap every [stride]-th thermal step
          (1 = every step, the paper's formulation).  The final step
          of the window is always constrained. *)
  variant : variant;
  gradient : gradient option;
}

val default : t
(** [tmax = 100], [dfs_period = 0.1], stride 1, [Variable], no
    gradient term — the paper's Eq. 3 setup. *)

val with_gradient : ?cap:float -> ?weight:float -> t -> t
(** Enable the Eq. 4-5 gradient extension (default weight 1.0). *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical values. *)
