open Linalg

let name = "pro-temp"

let create ~table =
  {
    Sim.Policy.controller_name = name;
    decide =
      (fun obs ->
        let n = Vec.dim obs.Sim.Policy.core_temperatures in
        match
          Table.lookup table
            ~temperature:obs.Sim.Policy.max_core_temperature
            ~required:obs.Sim.Policy.required_frequency
        with
        | Some frequencies ->
            if Vec.dim frequencies <> n then
              invalid_arg "Protemp.Controller: table core count mismatch";
            frequencies
        | None -> Vec.zeros n);
  }
