open Linalg

(* Controllers are first-class records, so the solve counter rides in
   a side table keyed by the controller's (unique) name. *)
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 4

let next_id =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let create ?options ?fallback ~machine ~spec () =
  let name = Printf.sprintf "pro-temp-online-%d" (next_id ()) in
  let counter = ref 0 in
  Hashtbl.replace counters name counter;
  let n_cores = machine.Sim.Machine.n_cores in
  let stop = Vec.zeros n_cores in
  let fallback_frequencies obs =
    match fallback with
    | None -> stop
    | Some table -> (
        match
          Table.lookup table
            ~temperature:obs.Sim.Policy.max_core_temperature
            ~required:obs.Sim.Policy.required_frequency
        with
        | Some f -> f
        | None -> stop)
  in
  let profile_of obs =
    (* Sensors exist per core; unsensed nodes are bounded above by the
       hottest core (conservative under monotone dynamics). *)
    let worst = obs.Sim.Policy.max_core_temperature in
    let ambient = machine.Sim.Machine.thermal.Thermal.Rc_model.ambient in
    let t0 = Vec.create machine.Sim.Machine.n_nodes (Float.max worst ambient) in
    Array.iteri
      (fun c node -> t0.(node) <- obs.Sim.Policy.core_temperatures.(c))
      machine.Sim.Machine.core_nodes;
    t0
  in
  {
    Sim.Policy.controller_name = name;
    decide =
      (fun obs ->
        incr counter;
        let built =
          Model.build_with_profile ~machine ~spec ~t0:(profile_of obs)
            ~ftarget:obs.Sim.Policy.required_frequency
        in
        match Model.solve ?options built with
        | Model.Feasible s -> s.Model.frequencies
        | Model.Infeasible -> fallback_frequencies obs);
  }

let solves (c : Sim.Policy.controller) =
  Option.map ( ! ) (Hashtbl.find_opt counters c.Sim.Policy.controller_name)
