let default_tstarts = [| 27.0; 30.0; 40.0; 50.0; 60.0; 70.0; 80.0; 90.0; 100.0 |]

let default_ftargets =
  Array.init 10 (fun i -> float_of_int (i + 1) *. 100.0 *. 1e6)

type progress = {
  tstart : float;
  ftarget : float;
  outcome : [ `Feasible | `Infeasible | `Pruned ];
  seconds : float;
}

let solve_point ?options ~machine ~spec ~tstart ~ftarget () =
  Model.solve ?options (Model.build ~machine ~spec ~tstart ~ftarget)

let sweep ?options ?(tstarts = default_tstarts)
    ?(ftargets = default_ftargets) ?on_progress ~machine ~spec () =
  let report p = match on_progress with Some f -> f p | None -> () in
  let cells =
    Array.map
      (fun tstart ->
        let infeasible_from = ref None in
        Array.map
          (fun ftarget ->
            match !infeasible_from with
            | Some f0 when ftarget >= f0 ->
                report { tstart; ftarget; outcome = `Pruned; seconds = 0.0 };
                Table.Infeasible
            | Some _ | None -> (
                let t0 = Unix.gettimeofday () in
                match solve_point ?options ~machine ~spec ~tstart ~ftarget () with
                | Model.Feasible s ->
                    report
                      { tstart; ftarget; outcome = `Feasible;
                        seconds = Unix.gettimeofday () -. t0 };
                    Table.Frequencies s.Model.frequencies
                | Model.Infeasible ->
                    infeasible_from := Some ftarget;
                    report
                      { tstart; ftarget; outcome = `Infeasible;
                        seconds = Unix.gettimeofday () -. t0 };
                    Table.Infeasible))
          ftargets)
      tstarts
  in
  Table.make ~tstarts ~ftargets cells

let frontier_point ?options ~machine ~spec ~tstart () =
  Model.solve_frontier ?options (Model.build_frontier ~machine ~spec ~tstart)

let max_feasible_ftarget ?options ~machine ~spec ~tstart () =
  match frontier_point ?options ~machine ~spec ~tstart () with
  | Model.Feasible s ->
      Some (Linalg.Vec.mean s.Model.frequencies)
  | Model.Infeasible -> None
