type variant = Variable | Uniform

type gradient = { weight : float; cap : float option }

type t = {
  tmax : float;
  dfs_period : float;
  constraint_stride : int;
  variant : variant;
  gradient : gradient option;
}

let default =
  {
    tmax = 100.0;
    dfs_period = 0.1;
    constraint_stride = 1;
    variant = Variable;
    gradient = None;
  }

let with_gradient ?cap ?(weight = 1.0) spec =
  { spec with gradient = Some { weight; cap } }

let validate spec =
  if spec.tmax <= 0.0 then invalid_arg "Spec: non-positive tmax";
  if spec.dfs_period <= 0.0 then invalid_arg "Spec: non-positive dfs_period";
  if spec.constraint_stride < 1 then
    invalid_arg "Spec: constraint_stride must be at least 1";
  match spec.gradient with
  | None -> ()
  | Some g ->
      if g.weight < 0.0 then invalid_arg "Spec: negative gradient weight";
      (match g.cap with
      | Some c when c <= 0.0 -> invalid_arg "Spec: non-positive gradient cap"
      | Some _ | None -> ())
