open Linalg

let window_peak ~machine ~dfs_period ~tstart ~frequencies =
  let thermal = machine.Sim.Machine.thermal in
  let dt = thermal.Thermal.Rc_model.dt in
  let steps = int_of_float (Float.round (dfs_period /. dt)) in
  if steps < 1 then invalid_arg "Guarantee.window_peak: window too short";
  if Vec.dim frequencies <> machine.Sim.Machine.n_cores then
    invalid_arg "Guarantee.window_peak: need one frequency per core";
  let power =
    Sim.Machine.power_vector machine ~frequencies
      ~busy:(Array.make machine.Sim.Machine.n_cores true)
  in
  let t0 = Vec.create machine.Sim.Machine.n_nodes tstart in
  let traj =
    Thermal.Transient.simulate thermal ~t0 ~steps ~power:(fun _ -> power)
  in
  Thermal.Transient.peak traj

type audit = {
  cells_checked : int;
  worst_margin : float;
  worst_cell : (float * float) option;
}

let audit_table ~machine ~(spec : Spec.t) table =
  let tstarts = Table.tstarts table in
  let ftargets = Table.ftargets table in
  let checked = ref 0 in
  let worst = ref infinity in
  let worst_cell = ref None in
  Array.iteri
    (fun i tstart ->
      Array.iteri
        (fun j ftarget ->
          match Table.cell table i j with
          | Table.Infeasible -> ()
          | Table.Frequencies frequencies ->
              incr checked;
              let peak =
                window_peak ~machine ~dfs_period:spec.Spec.dfs_period
                  ~tstart ~frequencies
              in
              let margin = spec.Spec.tmax -. peak in
              if margin < !worst then begin
                worst := margin;
                worst_cell := Some (tstart, ftarget)
              end)
        ftargets)
    tstarts;
  { cells_checked = !checked; worst_margin = !worst; worst_cell = !worst_cell }
