(** Phase 1 (design time): sweep the design space and build the table.

    For every grid point [(tstart, ftarget)] the convex model is
    solved and the optimal frequency vector stored.  Infeasibility is
    monotone (hotter starts and higher targets are both harder), which
    prunes the sweep: once a column is infeasible for a row, all
    higher columns are too, and the check is skipped. *)


val default_tstarts : float array
(** 30..100 in steps of 10 (plus the 27 ambient row). *)

val default_ftargets : float array
(** 100 MHz..1 GHz in steps of 100 MHz. *)

type progress = {
  tstart : float;
  ftarget : float;
  outcome : [ `Feasible | `Infeasible | `Pruned ];
  seconds : float;
}

val sweep :
  ?options:Convex.Barrier.options ->
  ?tstarts:float array ->
  ?ftargets:float array ->
  ?on_progress:(progress -> unit) ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  unit ->
  Table.t

val frontier_point :
  ?options:Convex.Barrier.options ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  tstart:float ->
  unit ->
  Model.outcome
(** Solve the max-throughput problem at one starting temperature; the
    solution's per-core frequencies are the Fig. 10 data. *)

val max_feasible_ftarget :
  ?options:Convex.Barrier.options ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  tstart:float ->
  unit ->
  float option
(** The feasibility frontier at one starting temperature — the average
    of {!frontier_point}'s frequencies (the Fig. 9 series); [None]
    when even idling is infeasible. *)

val solve_point :
  ?options:Convex.Barrier.options ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  tstart:float ->
  ftarget:float ->
  unit ->
  Model.outcome
(** One design point (convenience wrapper over {!Model}). *)
