(** The Pro-Temp temperature guarantee, made checkable.

    The argument: (1) the discrete step matrix is elementwise
    nonnegative, so temperatures are monotone in initial temperatures
    and powers; (2) the table entry for row [tstart] keeps every node
    below [tmax] for a whole window when all nodes start at [tstart]
    and every core burns the full modeled power; (3) the controller
    picks a row with [tstart >=] the observed maximum temperature and
    real powers never exceed the modeled ones.  Hence real
    temperatures are dominated by the certified trajectory.

    This module provides the window simulation used by (2) and a
    whole-table audit. *)

open Linalg

val window_peak :
  machine:Sim.Machine.t ->
  dfs_period:float ->
  tstart:float ->
  frequencies:Vec.t ->
  float
(** Worst node temperature over one DFS window when every node starts
    at [tstart] and every core runs busy at its assigned frequency —
    the certified upper envelope. *)

type audit = {
  cells_checked : int;
  worst_margin : float;
      (** [tmax - peak] over all feasible cells; positive means every
          entry honours the cap. *)
  worst_cell : (float * float) option;  (** [(tstart, ftarget)]. *)
}

val audit_table :
  machine:Sim.Machine.t -> spec:Spec.t -> Table.t -> audit
(** Re-simulate every feasible cell and report the tightest margin. *)
