(** Online (MPC-style) Pro-Temp: re-solve the convex program at every
    DFS epoch from the measured temperatures.

    The paper precomputes a table precisely to avoid online solving,
    at the cost of two conservatisms: the measured per-core profile is
    collapsed to its maximum (the table row key), and the demand is
    rounded to the column grid.  This controller removes both by
    solving the Eq. 3/5 instance for the actual situation each window.
    It keeps the never-exceeds-tmax guarantee: core temperatures are
    measured, and the unsensed non-core nodes are set to the hottest
    core reading, an upper bound under the monotone thermal dynamics
    (caches and buffers run cooler than cores on this platform).

    Cost: one interior-point solve (hundreds of milliseconds of host
    time at full constraint resolution) per 100 ms control window, so
    this variant is a research upper bound for what the table
    approximates — see the [abl_online_vs_table] bench. *)

val create :
  ?options:Convex.Barrier.options ->
  ?fallback:Table.t ->
  machine:Sim.Machine.t ->
  spec:Spec.t ->
  unit ->
  Sim.Policy.controller
(** When a window's instance is infeasible (or the solver fails), the
    controller consults [fallback] like {!Controller}, or stops the
    cores for the window if no fallback is given. *)

val solves : Sim.Policy.controller -> int option
(** Number of online solves a controller created here has performed;
    [None] for foreign controllers. *)
