(** Phase 2 (run time): the Pro-Temp DFS controller.

    Each DFS period it reads the maximum core temperature and the
    required average frequency from the engine's observation, and
    answers the precomputed frequency vector from the table.  When no
    table entry supports the situation (hotter than every row, or no
    feasible column) it stops the cores for one window — the
    conservative action the guarantee needs. *)

val create : table:Table.t -> Sim.Policy.controller
(** The controller is stateless; one table can drive many runs. *)

val name : string
(** "pro-temp". *)
