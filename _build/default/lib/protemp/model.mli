(** Construction of the paper's convex models (Eqs. 3-5).

    For a starting temperature [tstart] and a target average frequency
    [ftarget], builds the program

    {v
      minimize    sum_i p_i            (+ weight * tgrad, Eq. 5)
      subject to  t_{0,i}   = tstart
                  t_{k+1,i} = t_{k,i} + sum_j a_ij (t_kj - t_ki) + b_i p_i
                  t_{k,i}  <= tmax                  for all steps k, nodes i
                  pmax f_i^2 / fmax^2 <= p_i        (Eq. 2)
                  sum_i f_i >= n ftarget
                  0 <= f_i <= fmax
                  (gradient variant: t_{k,i} - t_{k,j} <= tgrad)
    v}

    Because the frequencies are held for the whole window, the
    temperature at step [k] is an {e affine} function of the power
    vector; the recurrence is eliminated up front, leaving one linear
    constraint per (step, node) pair, quadratic power-law constraints
    and a linear objective — a convex QCQP solved by {!Convex.Solve}.
    The gradient term is encoded with two auxiliary variables
    [u >= t_{k,i}/tmax >= l] ranging over all steps and cores, so
    [u - l] bounds the spread across the whole window; this dominates
    the paper's per-instant pairwise spread (Eq. 4) — a conservative
    over-approximation — while needing O(mn) instead of O(mn^2)
    constraints.

    Variables are normalized ([f/fmax], [p/pmax], [t/tmax]) so the
    barrier solver operates on a well-conditioned unit box. *)

open Linalg

type layout = {
  dim : int;
  n_cores : int;
  f_offset : int;  (** Index of the first frequency variable. *)
  n_f : int;  (** 1 for the uniform variant, [n_cores] otherwise. *)
  p_offset : int;
  n_p : int;
  bounds_offset : int option;
      (** Index of [(u, l)] when the gradient term is enabled. *)
}

type built = {
  problem : Convex.Barrier.problem;
  layout : layout;
  spec : Spec.t;
  initial_temperatures : Vec.t;
      (** Per-node start temperatures (uniform [tstart] for table
          cells; a measured profile for the online controller). *)
  ftarget : float;  (** Hz. *)
  steps : int;  (** Thermal steps in the window ([m] in the paper). *)
  machine : Sim.Machine.t;
}

val build :
  machine:Sim.Machine.t -> spec:Spec.t -> tstart:float -> ftarget:float ->
  built
(** Raises [Invalid_argument] for [ftarget] outside [[0, fmax]] or a
    window shorter than one thermal step. *)

val build_frontier :
  machine:Sim.Machine.t -> spec:Spec.t -> tstart:float -> built
(** The companion problem: maximize the total frequency under the same
    thermal envelope (no throughput floor).  Its optimum is the
    feasibility frontier of {!build} over [ftarget] — the Fig. 9
    curve — and its per-core split is the Fig. 10 data. *)

val build_with_profile :
  machine:Sim.Machine.t -> spec:Spec.t -> t0:Vec.t -> ftarget:float -> built
(** Like {!build} but from a full per-node temperature profile, for
    controllers that re-solve online with measured temperatures. *)

val build_frontier_with_profile :
  machine:Sim.Machine.t -> spec:Spec.t -> t0:Vec.t -> built

val start_hint : built -> Vec.t
(** A point that satisfies the power-law, box and throughput
    constraints (thermal feasibility still depends on [tstart]); lets
    the solver skip phase I whenever the instance is thermally
    easy. *)

val trivial_start : built -> Vec.t
(** Near-zero frequencies: strictly feasible for {!build_frontier}
    whenever the start temperature is inside the envelope at all. *)

type solution = {
  frequencies : Vec.t;  (** Per-core, Hz (expanded for uniform). *)
  core_powers : Vec.t;  (** Per-core, W. *)
  total_power : float;  (** W. *)
  gradient_spread : float option;
      (** [u - l] in degrees, when the gradient term is on. *)
  raw : Convex.Solve.solution;
}

type outcome = Feasible of solution | Infeasible

val solve : ?options:Convex.Barrier.options -> built -> outcome
(** Solve an Eq. 3/5 instance.  Feasibility is established
    structurally: if the warm-start hint is not strictly feasible, the
    frontier problem is driven until the throughput floor is cleared
    (or shown unreachable), side-stepping the generic phase I. *)

val solve_frontier : ?options:Convex.Barrier.options -> built -> outcome
(** Solve a {!build_frontier} instance; the returned solution's
    [frequencies] sum to the maximal supportable total. *)

val predicted_peak : built -> Vec.t -> float
(** Peak temperature over the window (any node, any step) when the
    cores run busy at the given per-core frequencies from [tstart] —
    i.e. what the model believes; used to verify solutions against the
    simulator. *)
