lib/protemp/online.mli: Convex Sim Spec Table
