lib/protemp/controller.mli: Sim Table
