lib/protemp/ladder.mli: Linalg Table Vec
