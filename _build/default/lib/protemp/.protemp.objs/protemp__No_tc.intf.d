lib/protemp/no_tc.mli: Sim
