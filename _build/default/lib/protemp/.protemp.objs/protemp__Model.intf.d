lib/protemp/model.mli: Convex Linalg Sim Spec Vec
