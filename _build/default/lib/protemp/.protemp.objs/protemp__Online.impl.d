lib/protemp/online.ml: Array Float Hashtbl Linalg Model Option Printf Sim Table Thermal Vec
