lib/protemp/spec.ml:
