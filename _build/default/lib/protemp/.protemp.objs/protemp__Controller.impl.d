lib/protemp/controller.ml: Linalg Sim Table Vec
