lib/protemp/offline.mli: Convex Model Sim Spec Table
