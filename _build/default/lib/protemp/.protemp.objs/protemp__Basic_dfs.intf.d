lib/protemp/basic_dfs.mli: Sim
