lib/protemp/table.ml: Array Buffer Format Linalg List Printf Stdlib String Vec
