lib/protemp/basic_dfs.ml: Float Linalg Printf Queue Sim Vec
