lib/protemp/guarantee.ml: Array Float Linalg Sim Spec Table Thermal Vec
