lib/protemp/model.ml: Array Convex Float Linalg List Mat Option Quad Sim Spec Thermal Vec
