lib/protemp/table.mli: Format Linalg Vec
