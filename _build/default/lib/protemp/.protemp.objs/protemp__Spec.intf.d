lib/protemp/spec.mli:
