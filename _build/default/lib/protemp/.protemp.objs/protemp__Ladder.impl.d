lib/protemp/ladder.ml: Array Float Linalg List Table Vec
