lib/protemp/offline.ml: Array Linalg Model Table Unix
