lib/protemp/no_tc.ml: Sim
