lib/protemp/guarantee.mli: Linalg Sim Spec Table Vec
