(** The paper's Basic-DFS baseline (reactive thermal management).

    Frequencies are matched to the application performance level; when
    a core has been seen at or above the threshold temperature it is
    shut down "for the time-period until the next DFS is applied".

    Reactive control reacts late by construction — the paper: "the
    cores operate for a long period above the maximum allowable
    temperature, before the frequency scaling takes place" (its Fig. 1
    shows excursions to ~125 degrees against a 90-degree trigger).
    [lag_periods] models that sensing/actuation delay: decisions use
    the reading sampled that many management intervals earlier.
    [lag_periods = 0] is an idealized instant-reacting governor (still
    unable to prevent within-window overshoot). *)

val create :
  ?threshold:float -> ?lag_periods:int -> fmax:float -> unit ->
  Sim.Policy.controller
(** [threshold] defaults to the paper's 90 degrees; [lag_periods]
    defaults to 1.  Note the returned controller is stateful (it keeps
    the reading history), so create a fresh one per simulation run. *)
