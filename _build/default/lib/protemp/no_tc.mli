(** The paper's No-TC reference: frequencies follow the application
    performance level, with no temperature control at all. *)

val create : fmax:float -> Sim.Policy.controller
