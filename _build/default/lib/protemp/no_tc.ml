let create ~fmax = Sim.Policy.workload_following ~fmax
