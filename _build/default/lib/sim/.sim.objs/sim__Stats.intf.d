lib/sim/stats.mli: Format Linalg Vec
