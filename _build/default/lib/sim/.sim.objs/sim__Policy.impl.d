lib/sim/policy.ml: Array Float Linalg List Printf Stdlib Vec
