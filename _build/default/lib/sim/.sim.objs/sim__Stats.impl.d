lib/sim/stats.ml: Array Float Format Linalg List Stdlib Vec
