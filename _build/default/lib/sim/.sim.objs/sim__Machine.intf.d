lib/sim/machine.mli: Linalg Thermal Vec
