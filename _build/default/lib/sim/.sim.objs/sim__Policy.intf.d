lib/sim/policy.mli: Linalg Vec
