lib/sim/engine.mli: Linalg Machine Policy Stats Vec Workload
