lib/sim/engine.ml: Array Float Linalg List Machine Option Policy Queue Stats Stdlib Thermal Unix Vec Workload
