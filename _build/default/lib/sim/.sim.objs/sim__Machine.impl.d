lib/sim/machine.ml: Array Float Linalg Mat Thermal Vec
