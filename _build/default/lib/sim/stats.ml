open Linalg

type band = { lo : float; hi : float }

let paper_bands =
  [
    { lo = neg_infinity; hi = 80.0 };
    { lo = 80.0; hi = 90.0 };
    { lo = 90.0; hi = 100.0 };
    { lo = 100.0; hi = infinity };
  ]

type t = {
  bands : band array;
  n_cores : int;
  tmax : float;
  band_time : float array;  (* core-seconds accumulated per band *)
  mutable above_time : float;  (* core-seconds above tmax *)
  mutable violation_steps : int;
  mutable total_steps : int;
  mutable sim_time : float;
  mutable peak : float;
  mutable peak_gradient : float;
  mutable gradient_sum : float;
  mutable waiting_sum : float;
  mutable waiting_max : float;
  mutable dispatched : int;
  mutable completed : int;
  mutable energy : float;
}

let create ?(bands = paper_bands) ~n_cores ~tmax () =
  if n_cores <= 0 then invalid_arg "Stats.create: non-positive cores";
  {
    bands = Array.of_list bands;
    n_cores;
    tmax;
    band_time = Array.make (List.length bands) 0.0;
    above_time = 0.0;
    violation_steps = 0;
    total_steps = 0;
    sim_time = 0.0;
    peak = neg_infinity;
    peak_gradient = 0.0;
    gradient_sum = 0.0;
    waiting_sum = 0.0;
    waiting_max = 0.0;
    dispatched = 0;
    completed = 0;
    energy = 0.0;
  }

let record_step s ~dt ~core_temperatures =
  if Vec.dim core_temperatures <> s.n_cores then
    invalid_arg "Stats.record_step: temperature vector length mismatch";
  let hottest = Vec.max core_temperatures in
  let coldest = Vec.min core_temperatures in
  s.total_steps <- s.total_steps + 1;
  s.sim_time <- s.sim_time +. dt;
  s.peak <- Float.max s.peak hottest;
  let spread = hottest -. coldest in
  s.peak_gradient <- Float.max s.peak_gradient spread;
  s.gradient_sum <- s.gradient_sum +. spread;
  if hottest > s.tmax then s.violation_steps <- s.violation_steps + 1;
  Array.iter
    (fun temp ->
      if temp > s.tmax then s.above_time <- s.above_time +. dt;
      Array.iteri
        (fun b { lo; hi } ->
          if temp >= lo && temp < hi then
            s.band_time.(b) <- s.band_time.(b) +. dt)
        s.bands)
    core_temperatures

let record_power s ~dt power =
  if power < 0.0 then invalid_arg "Stats.record_power: negative power";
  s.energy <- s.energy +. (power *. dt)

let record_waiting s w =
  if w < 0.0 then invalid_arg "Stats.record_waiting: negative waiting time";
  s.waiting_sum <- s.waiting_sum +. w;
  s.waiting_max <- Float.max s.waiting_max w;
  s.dispatched <- s.dispatched + 1

let record_completion s = s.completed <- s.completed + 1

let core_time s = s.sim_time *. float_of_int s.n_cores

let band_residency s =
  let total = Float.max 1e-300 (core_time s) in
  Array.to_list
    (Array.mapi (fun b band -> (band, s.band_time.(b) /. total)) s.bands)

let time_above s = s.above_time /. Float.max 1e-300 (core_time s)
let violation_steps s = s.violation_steps
let total_steps s = s.total_steps
let peak_temperature s = s.peak
let peak_gradient s = s.peak_gradient

let mean_gradient s =
  s.gradient_sum /. float_of_int (Stdlib.max 1 s.total_steps)

let mean_waiting s =
  if s.dispatched = 0 then 0.0
  else s.waiting_sum /. float_of_int s.dispatched

let max_waiting s = s.waiting_max
let completed s = s.completed
let simulated_time s = s.sim_time
let energy s = s.energy
let average_power s = s.energy /. Float.max 1e-300 s.sim_time

let pp ppf s =
  Format.fprintf ppf
    "@[<v>%d tasks completed in %.1f s@,peak %.1f C, %.2f%% of core-time \
     above %.0f C (%d violating steps)@,mean waiting %.2f ms (max %.1f \
     ms)@,gradient: mean %.2f C, peak %.2f C"
    s.completed s.sim_time s.peak
    (100.0 *. time_above s)
    s.tmax s.violation_steps
    (mean_waiting s *. 1e3)
    (s.waiting_max *. 1e3)
    (mean_gradient s) s.peak_gradient;
  Format.fprintf ppf "@,energy %.1f J (average power %.2f W)@,bands:" s.energy
    (average_power s);
  List.iter
    (fun ({ lo; hi }, frac) ->
      Format.fprintf ppf "@,  [%6.1f, %6.1f): %5.1f%%" lo hi (100.0 *. frac))
    (band_residency s);
  Format.fprintf ppf "@]"
