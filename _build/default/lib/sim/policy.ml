open Linalg

type observation = {
  time : float;
  core_temperatures : Vec.t;
  max_core_temperature : float;
  required_frequency : float;
  utilizations : Vec.t;
  queue_length : int;
  queued_work : float;
}

type controller = { controller_name : string; decide : observation -> Vec.t }

type assignment = {
  assignment_name : string;
  choose : idle:int list -> core_temperatures:Vec.t -> int option;
}

let coldest ~idle ~core_temperatures =
  match idle with
  | [] -> invalid_arg "Policy: no idle core"
  | c :: rest ->
      List.fold_left
        (fun best k ->
          if core_temperatures.(k) < core_temperatures.(best) then k else best)
        c rest

let first_idle =
  {
    assignment_name = "first-idle";
    choose =
      (fun ~idle ~core_temperatures:_ ->
        match idle with
        | [] -> invalid_arg "Policy.first_idle: no idle core"
        | c :: rest -> Some (List.fold_left Stdlib.min c rest));
  }

let coolest_first =
  {
    assignment_name = "coolest-first";
    choose =
      (fun ~idle ~core_temperatures ->
        Some (coldest ~idle ~core_temperatures));
  }

let cool_headroom ~threshold =
  {
    assignment_name = Printf.sprintf "cool-headroom@%.0fC" threshold;
    choose =
      (fun ~idle ~core_temperatures ->
        let c = coldest ~idle ~core_temperatures in
        if core_temperatures.(c) < threshold then Some c else None);
  }

let clamp ~fmax f = Float.min fmax (Float.max 0.0 f)

let fixed_frequency ~fmax f =
  let f = clamp ~fmax f in
  {
    controller_name = Printf.sprintf "fixed-%.0fMHz" (f /. 1e6);
    decide = (fun obs -> Vec.create (Vec.dim obs.core_temperatures) f);
  }

let workload_following ~fmax =
  {
    controller_name = "no-tc";
    decide =
      (fun obs ->
        Vec.create
          (Vec.dim obs.core_temperatures)
          (clamp ~fmax obs.required_frequency));
  }
