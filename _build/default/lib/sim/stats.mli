(** Statistics collected during a simulation run.

    Matches the paper's reporting: per-band residency of the cores
    (its Fig. 6 categories <80, 80-90, 90-100, >100), task waiting
    times (Fig. 7), peak temperatures and threshold violations (the
    headline guarantee), and spatial gradients (Fig. 8 / Sec. 5.4). *)

open Linalg

type band = { lo : float; hi : float }

val paper_bands : band list
(** [<80], [80-90], [90-100], [>100] degrees Celsius. *)

type t

val create : ?bands:band list -> n_cores:int -> tmax:float -> unit -> t

(** {1 Recording (used by the engine)} *)

val record_step : t -> dt:float -> core_temperatures:Vec.t -> unit

val record_power : t -> dt:float -> float -> unit
(** Accumulate the chip power drawn over one step (Watts). *)

val record_waiting : t -> float -> unit
(** One completed dispatch: time the task spent queued. *)

val record_completion : t -> unit

(** {1 Reading} *)

val band_residency : t -> (band * float) list
(** Fraction of core-time spent in each band (averaged over cores);
    fractions sum to 1. *)

val time_above : t -> float
(** Fraction of core-time spent strictly above [tmax]. *)

val violation_steps : t -> int
(** Number of thermal steps during which at least one core exceeded
    [tmax]. *)

val total_steps : t -> int

val peak_temperature : t -> float

val peak_gradient : t -> float
(** Largest instantaneous spread [max_i t_i - min_i t_i] observed. *)

val mean_gradient : t -> float

val mean_waiting : t -> float
(** Mean task waiting time, seconds ([0.0] if nothing was
    dispatched). *)

val max_waiting : t -> float

val completed : t -> int

val simulated_time : t -> float

val energy : t -> float
(** Total chip energy drawn, Joules. *)

val average_power : t -> float
(** [energy / simulated_time], Watts. *)

val pp : Format.formatter -> t -> unit
