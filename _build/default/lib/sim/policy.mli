(** Controller and task-assignment policy interfaces.

    A {e controller} is the DFS decision function the thermal
    management unit invokes once per DFS period; an {e assignment
    policy} picks which idle core receives the next queued task.
    Keeping them first-class values (rather than functors) lets the
    benches enumerate policy combinations. *)

open Linalg

type observation = {
  time : float;  (** Start of the upcoming DFS window, seconds. *)
  core_temperatures : Vec.t;
  max_core_temperature : float;
  required_frequency : float;
      (** Average frequency (Hz) needed to clear the current backlog
          within the window, accounting for how many cores the
          runnable tasks can actually occupy; already clamped to
          [[0, fmax]]. *)
  utilizations : Vec.t;
      (** Per-core busy fraction over the elapsed window. *)
  queue_length : int;
  queued_work : float;  (** Seconds at fmax, including running tasks'
                            remaining work. *)
}

type controller = {
  controller_name : string;
  decide : observation -> Vec.t;
      (** Returns per-core frequencies in Hz for the next window
          (0 = shut down). *)
}

type assignment = {
  assignment_name : string;
  choose : idle:int list -> core_temperatures:Vec.t -> int option;
      (** Pick one of the [idle] core indices (non-empty), or [None]
          to defer dispatch to a later step (thermally-aware admission
          control). *)
}

val first_idle : assignment
(** The paper's simple policy: any idle processor — we take the
    lowest-numbered one. *)

val coolest_first : assignment
(** Send work to the coldest idle core (always dispatches). *)

val cool_headroom : threshold:float -> assignment
(** The temperature-aware allocation in the spirit of Coskun et
    al. [26] (the paper's "efficient task assignment", Sec. 5.4):
    dispatch to the coldest idle core, but only if it is below
    [threshold]; otherwise hold the task so the hot cores get a
    breather. *)

val fixed_frequency : fmax:float -> float -> controller
(** A controller that always answers the same frequency on all cores
    (clamped to [[0, fmax]]); useful for tests and warm-up phases. *)

val workload_following : fmax:float -> controller
(** Matches the application performance level with no thermal action:
    every core runs at the observation's [required_frequency].  This
    is the paper's No-TC reference. *)
