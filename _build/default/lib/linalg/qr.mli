(** QR factorization by Householder reflections, and least squares.

    Used for calibration fits (thermal parameter identification) and as
    a numerically robust fallback solver. *)

exception Rank_deficient of int
(** Raised by {!solve_least_squares} when a diagonal entry of [R] is
    negligibly small; the payload is the column index. *)

type t

val factorize : Mat.t -> t
(** Factorize an [m x n] matrix with [m >= n] as [A = Q R]. *)

val r : t -> Mat.t
(** The [n x n] upper-triangular factor. *)

val qt_mul : t -> Vec.t -> Vec.t
(** [qt_mul f b] is [Q^T b] (length [m]), applied implicitly. *)

val solve_least_squares : Mat.t -> Vec.t -> Vec.t
(** Minimize [||A x - b||_2] for a full-column-rank [A]. *)

val residual_norm : Mat.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b] is [||A x - b||_2]; handy for tests. *)
