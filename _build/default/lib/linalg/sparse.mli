(** Sparse matrices in compressed-sparse-row form, with a conjugate
    gradient solver for symmetric positive-definite systems.

    Large RC thermal meshes (fine-grained floorplans) have a few
    neighbours per node; CSR + CG solves their steady states without
    densifying. *)

type t

type triplet = { row : int; col : int; value : float }

val of_triplets : rows:int -> cols:int -> triplet list -> t
(** Build from coordinate triplets.  Duplicate [(row, col)] entries are
    summed; explicit zeros are dropped. *)

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val get : t -> int -> int -> float
(** [get m i j] is the stored value at [(i, j)] or [0.0]. *)

val mul_vec : t -> Vec.t -> Vec.t

val to_dense : t -> Mat.t

val transpose : t -> t

val scale : float -> t -> t

val is_symmetric : ?tol:float -> t -> bool

type cg_result = {
  solution : Vec.t;
  iterations : int;
  residual : float;  (** Final 2-norm of [b - A x]. *)
  converged : bool;
}

val cg :
  ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> t -> Vec.t -> cg_result
(** Conjugate gradients on an SPD matrix.  [tol] (default [1e-10]) is
    relative to [||b||]; [max_iter] defaults to [10 * rows]. *)
