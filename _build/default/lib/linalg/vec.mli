(** Dense floating-point vectors.

    A vector is a plain [float array]; this module provides the
    numerical operations the rest of the library needs, with functional
    ([map], [add], ...) and in-place ([axpy_into], [scale_into], ...)
    variants.  All binary operations require equal lengths and raise
    [Invalid_argument] otherwise. *)

type t = float array

(** {1 Construction} *)

val create : int -> float -> t
(** [create n x] is a vector of [n] copies of [x]. *)

val zeros : int -> t

val init : int -> (int -> float) -> t

val of_list : float list -> t

val copy : t -> t

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of length [n]. *)

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n] points evenly spaced from [a] to [b]
    inclusive.  Requires [n >= 2]. *)

(** {1 Access} *)

val dim : t -> int

val to_list : t -> float list

(** {1 Pure arithmetic} *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val neg : t -> t

val mul : t -> t -> t
(** Element-wise product. *)

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val norm1 : t -> float

val dist2 : t -> t -> float
(** [dist2 x y] is [norm2 (sub x y)]. *)

val sum : t -> float

val mean : t -> float
(** Mean of the entries.  Requires a non-empty vector. *)

val min : t -> float
(** Smallest entry.  Requires a non-empty vector. *)

val max : t -> float
(** Largest entry.  Requires a non-empty vector. *)

val argmax : t -> int
(** Index of the largest entry (first on ties). *)

val argmin : t -> int

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val concat : t -> t -> t

val slice : t -> int -> int -> t
(** [slice v pos len] copies [len] entries starting at [pos]. *)

(** {1 In-place arithmetic} *)

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit

val add_into : dst:t -> t -> unit
(** [add_into ~dst x] sets [dst := dst + x]. *)

val scale_into : dst:t -> float -> unit

val axpy_into : dst:t -> float -> t -> unit
(** [axpy_into ~dst a x] sets [dst := dst + a*x]. *)

(** {1 Comparison and printing} *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison within absolute tolerance [tol]
    (default [1e-9]).  Vectors of different lengths are unequal. *)

val pp : Format.formatter -> t -> unit
