(** LU factorization with partial pivoting, and the direct solvers
    built on it. *)

exception Singular of int
(** Raised when a (near-)zero pivot is met; the payload is the
    elimination column. *)

type t
(** A factorization [P*A = L*U] of a square matrix [A]. *)

val factorize : ?pivot_tol:float -> Mat.t -> t
(** Factorize a square matrix.  Raises {!Singular} if a pivot has
    absolute value below [pivot_tol] (default [1e-13] scaled by the
    matrix infinity norm). *)

val solve_factorized : t -> Vec.t -> Vec.t
(** Solve [A x = b] reusing a factorization. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** One-shot [A x = b]. *)

val solve_many : Mat.t -> Vec.t list -> Vec.t list
(** Solve against several right-hand sides with one factorization. *)

val inverse : Mat.t -> Mat.t

val det : Mat.t -> float
(** Determinant via the factorization; [0.0] for singular input. *)
