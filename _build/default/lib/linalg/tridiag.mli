(** Tridiagonal systems (Thomas algorithm).

    Used by the 3-layer HotSpot-style validation model, whose vertical
    heat path per block is a small tridiagonal chain. *)

exception Singular of int

val solve :
  lower:Vec.t -> diag:Vec.t -> upper:Vec.t -> rhs:Vec.t -> Vec.t
(** [solve ~lower ~diag ~upper ~rhs] solves the [n x n] tridiagonal
    system.  [diag] and [rhs] have length [n]; [lower] and [upper]
    have length [n-1] ([lower.(i)] couples row [i+1] to column [i],
    [upper.(i)] couples row [i] to column [i+1]).  Raises {!Singular}
    on a zero pivot. *)

val mul_vec :
  lower:Vec.t -> diag:Vec.t -> upper:Vec.t -> Vec.t -> Vec.t
(** Multiply a tridiagonal matrix by a vector; for residual checks. *)
