type t = float array

let dim = Array.length

let check_same_dim name x y =
  if dim x <> dim y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (dim x)
         (dim y))

let create n x =
  if n < 0 then invalid_arg "Vec.create: negative length";
  Array.make n x

let zeros n = create n 0.0
let init = Array.init
let of_list = Array.of_list
let copy = Array.copy

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = zeros n in
  v.(i) <- 1.0;
  v

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need at least two points";
  let step = (b -. a) /. float_of_int (n - 1) in
  init n (fun i -> a +. (float_of_int i *. step))

let to_list = Array.to_list
let map = Array.map

let map2 f x y =
  check_same_dim "map2" x y;
  Array.init (dim x) (fun i -> f x.(i) y.(i))

let add x y =
  check_same_dim "add" x y;
  Array.init (dim x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_dim "sub" x y;
  Array.init (dim x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun xi -> a *. xi) x
let neg x = scale (-1.0) x

let mul x y =
  check_same_dim "mul" x y;
  Array.init (dim x) (fun i -> x.(i) *. y.(i))

let axpy a x y =
  check_same_dim "axpy" x y;
  Array.init (dim x) (fun i -> (a *. x.(i)) +. y.(i))

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to dim x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc xi -> Float.max acc (Float.abs xi)) 0.0 x

let norm1 x = Array.fold_left (fun acc xi -> acc +. Float.abs xi) 0.0 x

let dist2 x y = norm2 (sub x y)
let sum x = Array.fold_left ( +. ) 0.0 x

let mean x =
  if dim x = 0 then invalid_arg "Vec.mean: empty vector";
  sum x /. float_of_int (dim x)

let min x =
  if dim x = 0 then invalid_arg "Vec.min: empty vector";
  Array.fold_left Float.min x.(0) x

let max x =
  if dim x = 0 then invalid_arg "Vec.max: empty vector";
  Array.fold_left Float.max x.(0) x

let argmax x =
  if dim x = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to dim x - 1 do
    if x.(i) > x.(!best) then best := i
  done;
  !best

let argmin x =
  if dim x = 0 then invalid_arg "Vec.argmin: empty vector";
  let best = ref 0 in
  for i = 1 to dim x - 1 do
    if x.(i) < x.(!best) then best := i
  done;
  !best

let concat = Array.append

let slice v pos len =
  if pos < 0 || len < 0 || pos + len > dim v then
    invalid_arg "Vec.slice: out of range";
  Array.sub v pos len

let fill v x = Array.fill v 0 (dim v) x

let blit ~src ~dst =
  check_same_dim "blit" src dst;
  Array.blit src 0 dst 0 (dim src)

let add_into ~dst x =
  check_same_dim "add_into" dst x;
  for i = 0 to dim dst - 1 do
    dst.(i) <- dst.(i) +. x.(i)
  done

let scale_into ~dst a =
  for i = 0 to dim dst - 1 do
    dst.(i) <- a *. dst.(i)
  done

let axpy_into ~dst a x =
  check_same_dim "axpy_into" dst x;
  for i = 0 to dim dst - 1 do
    dst.(i) <- dst.(i) +. (a *. x.(i))
  done

let approx_equal ?(tol = 1e-9) x y =
  dim x = dim y
  &&
  let ok = ref true in
  for i = 0 to dim x - 1 do
    if Float.abs (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (to_list v)
