lib/linalg/tridiag.mli: Vec
