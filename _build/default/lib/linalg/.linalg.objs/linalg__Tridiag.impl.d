lib/linalg/tridiag.ml: Array Stdlib Vec
