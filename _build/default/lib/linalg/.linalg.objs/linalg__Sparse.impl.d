lib/linalg/sparse.ml: Array Float Hashtbl List Mat Vec
