lib/linalg/expm.mli: Mat Vec
