(* Scaling-and-squaring with a diagonal Padé approximant, following
   Moler & Van Loan's "nineteen dubious ways", method 3.  The [6/6]
   approximant with ||A/2^s|| <= 0.5 gives ~1e-14 relative accuracy,
   ample for thermal systems. *)

let pade_6 a =
  let n = Mat.rows a in
  (* Coefficients c_k = (12-k)! 6! / (12! k! (6-k)!), built by the
     standard recurrence c_k = c_{k-1} (p-k+1) / (k (2p-k+1)), p=6. *)
  let c = Array.make 7 1.0 in
  for k = 1 to 6 do
    c.(k) <-
      c.(k - 1)
      *. float_of_int (6 - k + 1)
      /. (float_of_int k *. float_of_int (12 - k + 1))
  done;
  let a2 = Mat.matmul a a in
  let a4 = Mat.matmul a2 a2 in
  let a6 = Mat.matmul a4 a2 in
  let i = Mat.identity n in
  (* Even part E = c0 I + c2 A^2 + c4 A^4 + c6 A^6,
     odd part  O = A (c1 I + c3 A^2 + c5 A^4).
     Then N = E + O, D = E - O, and expm ~ D^{-1} N. *)
  let even =
    Mat.add
      (Mat.add (Mat.scale c.(0) i) (Mat.scale c.(2) a2))
      (Mat.add (Mat.scale c.(4) a4) (Mat.scale c.(6) a6))
  in
  let odd_inner =
    Mat.add (Mat.scale c.(1) i) (Mat.add (Mat.scale c.(3) a2) (Mat.scale c.(5) a4))
  in
  let odd = Mat.matmul a odd_inner in
  let num = Mat.add even odd in
  let den = Mat.sub even odd in
  (* Solve den * X = num column by column. *)
  let f = Lu.factorize den in
  let x = Mat.zeros n n in
  for j = 0 to n - 1 do
    let col = Lu.solve_factorized f (Mat.col num j) in
    Array.iteri (fun i v -> Mat.set x i j v) col
  done;
  x

let expm a =
  if not (Mat.is_square a) then invalid_arg "Expm.expm: not square";
  let norm = Mat.norm_inf a in
  let s =
    if norm <= 0.5 then 0
    else int_of_float (Float.ceil (Float.log2 (norm /. 0.5)))
  in
  let scaled = Mat.scale (1.0 /. Float.pow 2.0 (float_of_int s)) a in
  let e = ref (pade_6 scaled) in
  for _ = 1 to s do
    e := Mat.matmul !e !e
  done;
  !e

let expm_action a v = Mat.mul_vec (expm a) v

(* phi_1 via the block-matrix trick: expm [[A, I]; [0, 0]] has phi_1(A)
   in its upper-right block. *)
let phi1 a =
  if not (Mat.is_square a) then invalid_arg "Expm.phi1: not square";
  let n = Mat.rows a in
  let big =
    Mat.init (2 * n) (2 * n) (fun i j ->
        if i < n && j < n then Mat.get a i j
        else if i < n && j >= n then if j - n = i then 1.0 else 0.0
        else 0.0)
  in
  let e = expm big in
  Mat.init n n (fun i j -> Mat.get e i (j + n))
