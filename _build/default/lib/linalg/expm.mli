(** Matrix exponential by scaling-and-squaring with Padé approximation.

    Used to compute the exact transient response of the linear thermal
    system [dT/dt = A T + B p] for the ablation study against the
    paper's explicit-Euler recurrence. *)

val expm : Mat.t -> Mat.t
(** [expm a] is [e^a] for a square matrix, via [6/6] Padé with
    scaling-and-squaring. *)

val expm_action : Mat.t -> Vec.t -> Vec.t
(** [expm_action a v] is [e^a * v] (currently computes [expm a]
    first; a dedicated Krylov routine is future work). *)

val phi1 : Mat.t -> Mat.t
(** [phi1 a] is the phi-function [phi_1(a) = a^{-1}(e^a - I)], extended
    continuously at singular [a] by its Taylor series.  With it, the
    exact step of [dT/dt = A T + u] over time [h] is
    [T(h) = e^{hA} T(0) + h * phi_1(hA) u]. *)
