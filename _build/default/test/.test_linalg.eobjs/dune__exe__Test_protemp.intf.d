test/test_protemp.mli:
