test/test_convex.ml: Alcotest Array Barrier Bisect Chol Convex Expr Float Fun Kkt Linalg Linprog List Mat Newton Phase1 QCheck2 QCheck_alcotest Quad Random Simplex Solve Vec
