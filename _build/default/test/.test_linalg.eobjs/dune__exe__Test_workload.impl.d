test/test_workload.ml: Alcotest Array Arrival Hashtbl Int64 List Mix QCheck2 QCheck_alcotest Rng Task Trace Workload
