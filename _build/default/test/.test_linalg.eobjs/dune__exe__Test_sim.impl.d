test/test_sim.ml: Alcotest Array Int64 Lazy Linalg List Printf QCheck2 QCheck_alcotest Sim Thermal Vec Workload
