test/test_thermal.ml: Alcotest Array Calibrate Float Floorplan Hotspot3l Linalg List Mat Niagara Printf QCheck2 QCheck_alcotest Random Rc_model Thermal Transient Vec
