test/test_protemp.ml: Alcotest Array Float Fun Int64 Lazy Linalg List Option Printf Protemp QCheck2 QCheck_alcotest Random Sim Vec Workload
