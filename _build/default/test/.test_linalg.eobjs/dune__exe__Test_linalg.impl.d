test/test_linalg.ml: Alcotest Array Chol Expm Float Linalg List Lu Mat QCheck2 QCheck_alcotest Qr Random Sparse Tridiag Vec
