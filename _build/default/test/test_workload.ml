(* Tests for the workload substrate: PRNG, arrival processes,
   benchmark mixes and trace generation. *)

open Workload

let check_bool = Alcotest.(check bool)
let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1L and b = Rng.create 2L in
  check_bool "different" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 3L in
  let b = Rng.split a in
  check_bool "split differs" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_float_range () =
  let r = Rng.create 11L in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    check_bool "in range" true (x >= 0.0 && x < 2.5)
  done

let test_rng_int_range () =
  let r = Rng.create 13L in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    let k = Rng.int r 10 in
    check_bool "in range" true (k >= 0 && k < 10);
    seen.(k) <- true
  done;
  check_bool "all values hit" true (Array.for_all (fun b -> b) seen)

let test_rng_exponential_mean () =
  let r = Rng.create 17L in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~rate:4.0
  done;
  check_float 0.01 "mean 1/rate" 0.25 (!acc /. float_of_int n)

let test_rng_bernoulli_frequency () =
  let r = Rng.create 19L in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r ~p:0.3 then incr hits
  done;
  check_float 0.02 "frequency" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_rejects_bad_args () =
  let r = Rng.create 23L in
  check_bool "float" true
    (match Rng.float r 0.0 with _ -> false | exception Invalid_argument _ -> true);
  check_bool "int" true
    (match Rng.int r 0 with _ -> false | exception Invalid_argument _ -> true);
  check_bool "exponential" true
    (match Rng.exponential r ~rate:(-1.0) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "bernoulli" true
    (match Rng.bernoulli r ~p:1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Arrival *)

let increasing a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let realized_rate times =
  float_of_int (Array.length times - 1) /. times.(Array.length times - 1)

let test_poisson_rate () =
  let rng = Rng.create 29L in
  let times = Arrival.generate_times Arrival.Poisson ~rng ~rate:500.0 ~count:20000 in
  check_bool "increasing" true (increasing times);
  check_float 15.0 "rate" 500.0 (realized_rate times)

let test_periodic_rate_and_jitter () =
  let rng = Rng.create 31L in
  let times =
    Arrival.generate_times (Arrival.Periodic { jitter = 0.4 }) ~rng ~rate:100.0
      ~count:5000
  in
  check_bool "increasing" true (increasing times);
  check_float 2.0 "rate" 100.0 (realized_rate times);
  (* every gap within [0.8, 1.2] of the period *)
  let ok = ref true in
  for i = 1 to Array.length times - 1 do
    let gap = times.(i) -. times.(i - 1) in
    if gap < 0.008 || gap > 0.012 then ok := false
  done;
  check_bool "jitter bounded" true !ok

let test_bursty_long_run_rate () =
  let rng = Rng.create 37L in
  let p = Arrival.Bursty { burst_factor = 1.5; mean_on = 0.5; mean_off = 0.4 } in
  let times = Arrival.generate_times p ~rng ~rate:800.0 ~count:100000 in
  check_bool "increasing" true (increasing times);
  (* Burst phases make the estimate noisy; 8% tolerance. *)
  check_float 64.0 "long-run rate" 800.0 (realized_rate times)

let test_bursty_rejects_bad_parameters () =
  let rng = Rng.create 41L in
  let bad p =
    match Arrival.generate_times p ~rng ~rate:100.0 ~count:10 with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "burst_factor <= 1" true
    (bad (Arrival.Bursty { burst_factor = 1.0; mean_on = 1.0; mean_off = 1.0 }));
  check_bool "negative phase" true
    (bad (Arrival.Bursty { burst_factor = 1.5; mean_on = -1.0; mean_off = 1.0 }));
  (* burst_factor * on_fraction >= 1 would need a negative off rate *)
  check_bool "overdriven burst" true
    (bad (Arrival.Bursty { burst_factor = 3.0; mean_on = 9.0; mean_off = 1.0 }))

(* ------------------------------------------------------------------ *)
(* Task *)

let test_task_service_time () =
  let t = { Task.id = 0; arrival = 0.0; work = 0.004; benchmark = Task.Web } in
  check_float 1e-12 "at fmax" 0.004 (Task.service_time t ~frequency:1e9 ~fmax:1e9);
  check_float 1e-12 "at half" 0.008 (Task.service_time t ~frequency:5e8 ~fmax:1e9);
  check_bool "zero frequency" true
    (match Task.service_time t ~frequency:0.0 ~fmax:1e9 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mix *)

let test_mix_mean_work () =
  (* compute: uniform 8-10 ms -> mean 9 ms *)
  check_float 1e-9 "compute mean" 9e-3 (Mix.mean_work Mix.compute_intensive)

let test_mix_arrival_rate () =
  let m = Mix.compute_intensive in
  (* rate = util * n / mean_work *)
  check_float 1e-6 "rate" (0.9 *. 8.0 /. 9e-3) (Mix.arrival_rate m ~n_cores:8)

let test_mix_sample_in_range () =
  let rng = Rng.create 43L in
  for i = 0 to 999 do
    let t = Mix.sample_task Mix.paper_mix ~rng ~id:i ~arrival:(float_of_int i) in
    check_bool "work in 1..10ms" true (t.Task.work >= 1e-3 && t.Task.work <= 10e-3)
  done

let test_mix_weights_respected () =
  let rng = Rng.create 47L in
  let counts = Hashtbl.create 3 in
  let n = 20000 in
  for i = 0 to n - 1 do
    let t = Mix.sample_task Mix.paper_mix ~rng ~id:i ~arrival:0.0 in
    let k = Task.benchmark_name t.Task.benchmark in
    Hashtbl.replace counts k (1 + try Hashtbl.find counts k with Not_found -> 0)
  done;
  let frac k = float_of_int (Hashtbl.find counts k) /. float_of_int n in
  check_float 0.02 "web share" 0.40 (frac "web");
  check_float 0.02 "multimedia share" 0.35 (frac "multimedia");
  check_float 0.02 "compute share" 0.25 (frac "compute")

let test_mix_validation () =
  let bad = { Mix.web with Mix.utilization = 1.5 } in
  check_bool "bad utilization" true
    (match Mix.validate bad with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let empty = { Mix.web with Mix.components = [] } in
  check_bool "empty" true
    (match Mix.validate empty with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_mix_by_name () =
  check_bool "web" true (Mix.by_name "web" == Mix.web);
  check_bool "unknown" true
    (match Mix.by_name "nope" with
    | _ -> false
    | exception Not_found -> true)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_sorted_and_sized () =
  let trace = Trace.generate ~seed:1L ~n_tasks:5000 Mix.paper_mix in
  check_int "count" 5000 (Array.length trace.Trace.tasks);
  let ok = ref true in
  for i = 1 to 4999 do
    if
      trace.Trace.tasks.(i).Task.arrival
      < trace.Trace.tasks.(i - 1).Task.arrival
    then ok := false
  done;
  check_bool "sorted" true !ok;
  check_float 1e-12 "horizon is last arrival"
    trace.Trace.tasks.(4999).Task.arrival trace.Trace.horizon

let test_trace_reproducible () =
  let t1 = Trace.generate ~seed:5L ~n_tasks:100 Mix.web in
  let t2 = Trace.generate ~seed:5L ~n_tasks:100 Mix.web in
  check_bool "same tasks" true
    (Array.for_all2
       (fun a b -> a.Task.arrival = b.Task.arrival && a.Task.work = b.Task.work)
       t1.Trace.tasks t2.Trace.tasks)

let test_trace_statistics () =
  let trace = Trace.generate ~seed:2L ~n_tasks:30000 Mix.web in
  let s = Trace.statistics trace ~n_cores:8 in
  check_int "count" 30000 s.Trace.count;
  check_float 3e-4 "mean work" 2.5e-3 s.Trace.mean_work;
  check_bool "max <= 4ms" true (s.Trace.max_work <= 4e-3);
  (* Poisson web traffic realizes its target utilization closely. *)
  check_float 0.05 "utilization" 0.45 s.Trace.offered_utilization

let test_trace_tasks_in_window () =
  let trace = Trace.generate ~seed:3L ~n_tasks:1000 Mix.web in
  let lo = trace.Trace.horizon /. 4.0 and hi = trace.Trace.horizon /. 2.0 in
  let inside = Trace.tasks_in_window trace ~lo ~hi in
  check_bool "non-trivial" true (List.length inside > 0);
  List.iter
    (fun t ->
      check_bool "inside" true (t.Task.arrival >= lo && t.Task.arrival < hi))
    inside

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_poisson_interarrivals_positive =
  QCheck2.Test.make ~name:"arrival: strictly increasing times" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let times = Arrival.generate_times Arrival.Poisson ~rng ~rate:100.0 ~count:200 in
      increasing times)

let prop_trace_work_positive =
  QCheck2.Test.make ~name:"trace: all work in the mix envelope" ~count:30
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let trace =
        Trace.generate ~seed:(Int64.of_int seed) ~n_tasks:500 Mix.paper_mix
      in
      Array.for_all
        (fun t -> t.Task.work >= 1e-3 && t.Task.work <= 10e-3)
        trace.Trace.tasks)

let prop_bursty_rate_bounded =
  QCheck2.Test.make ~name:"arrival: bursty long-run rate near target"
    ~count:10
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let p = Arrival.Bursty { burst_factor = 1.5; mean_on = 0.3; mean_off = 0.3 } in
      let times = Arrival.generate_times p ~rng ~rate:1000.0 ~count:50000 in
      let r = realized_rate times in
      r > 850.0 && r < 1150.0)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_poisson_interarrivals_positive; prop_trace_work_positive;
      prop_bursty_rate_bounded ]

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_different_seeds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bernoulli frequency" `Quick
            test_rng_bernoulli_frequency;
          Alcotest.test_case "argument validation" `Quick
            test_rng_rejects_bad_args;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
          Alcotest.test_case "periodic rate and jitter" `Quick
            test_periodic_rate_and_jitter;
          Alcotest.test_case "bursty long-run rate" `Quick
            test_bursty_long_run_rate;
          Alcotest.test_case "bursty parameter validation" `Quick
            test_bursty_rejects_bad_parameters;
        ] );
      ( "task",
        [ Alcotest.test_case "service time" `Quick test_task_service_time ] );
      ( "mix",
        [
          Alcotest.test_case "mean work" `Quick test_mix_mean_work;
          Alcotest.test_case "arrival rate" `Quick test_mix_arrival_rate;
          Alcotest.test_case "sample ranges" `Quick test_mix_sample_in_range;
          Alcotest.test_case "weights respected" `Quick
            test_mix_weights_respected;
          Alcotest.test_case "validation" `Quick test_mix_validation;
          Alcotest.test_case "lookup by name" `Quick test_mix_by_name;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sorted and sized" `Quick
            test_trace_sorted_and_sized;
          Alcotest.test_case "reproducible" `Quick test_trace_reproducible;
          Alcotest.test_case "statistics" `Quick test_trace_statistics;
          Alcotest.test_case "window query" `Quick test_trace_tasks_in_window;
        ] );
      ("properties", props);
    ]
