(* Tests for the Pro-Temp core: specs, convex model construction and
   solving, the offline sweep, the table, the online controllers, and
   the headline never-exceeds-tmax guarantee as a property. *)

open Linalg

let check_bool = Alcotest.(check bool)
let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)

let machine = lazy (Sim.Machine.niagara ())

(* A cheaper spec for solver-bound unit tests: same window, thermal
   cap enforced every 4th step (the audit below confirms the guarantee
   still holds at full resolution). *)
let fast_spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 4 }

(* ------------------------------------------------------------------ *)
(* Spec *)

let test_spec_validation () =
  let bad s =
    match Protemp.Spec.validate s with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "negative tmax" true
    (bad { Protemp.Spec.default with Protemp.Spec.tmax = -1.0 });
  check_bool "zero stride" true
    (bad { Protemp.Spec.default with Protemp.Spec.constraint_stride = 0 });
  check_bool "default ok" true
    (match Protemp.Spec.validate Protemp.Spec.default with
    | () -> true
    | exception Invalid_argument _ -> false)

let test_spec_with_gradient () =
  let s = Protemp.Spec.with_gradient ~weight:2.0 Protemp.Spec.default in
  match s.Protemp.Spec.gradient with
  | Some g -> check_float 1e-12 "weight" 2.0 g.Protemp.Spec.weight
  | None -> Alcotest.fail "gradient not set"

(* ------------------------------------------------------------------ *)
(* Table (synthetic; no solver involved) *)

let freqs v = Protemp.Table.Frequencies (Vec.create 8 v)

let synthetic_table () =
  Protemp.Table.make ~tstarts:[| 50.0; 80.0; 100.0 |]
    ~ftargets:[| 2e8; 5e8; 8e8 |]
    [|
      [| freqs 2e8; freqs 5e8; freqs 8e8 |];
      [| freqs 2e8; freqs 5e8; Protemp.Table.Infeasible |];
      [| freqs 2e8; Protemp.Table.Infeasible; Protemp.Table.Infeasible |];
    |]

let test_table_validation () =
  check_bool "unsorted tstarts" true
    (match
       Protemp.Table.make ~tstarts:[| 80.0; 50.0 |] ~ftargets:[| 1e8 |]
         [| [| freqs 1e8 |]; [| freqs 1e8 |] |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "ragged" true
    (match
       Protemp.Table.make ~tstarts:[| 50.0 |] ~ftargets:[| 1e8; 2e8 |]
         [| [| freqs 1e8 |] |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_table_row_selection () =
  let t = synthetic_table () in
  check_bool "below first" true
    (Protemp.Table.row_for_temperature t 30.0 = Some 0);
  check_bool "exact" true (Protemp.Table.row_for_temperature t 80.0 = Some 1);
  check_bool "between" true (Protemp.Table.row_for_temperature t 81.0 = Some 2);
  check_bool "too hot" true (Protemp.Table.row_for_temperature t 101.0 = None)

let test_table_lookup_rounds_up_frequency () =
  let t = synthetic_table () in
  (* required 3e8 at a cool chip: smallest column >= required is 5e8 *)
  match Protemp.Table.lookup t ~temperature:40.0 ~required:3e8 with
  | Some f -> check_float 1.0 "rounded up" 5e8 f.(0)
  | None -> Alcotest.fail "expected entry"

let test_table_lookup_falls_back_down () =
  let t = synthetic_table () in
  (* hot row 100: the 5e8 and 8e8 columns are infeasible; fall back to
     the next lower feasible point, 2e8. *)
  match Protemp.Table.lookup t ~temperature:95.0 ~required:7e8 with
  | Some f -> check_float 1.0 "fell back" 2e8 f.(0)
  | None -> Alcotest.fail "expected fallback entry"

let test_table_lookup_none_when_too_hot () =
  let t = synthetic_table () in
  check_bool "none" true
    (Protemp.Table.lookup t ~temperature:120.0 ~required:1e8 = None)

let test_table_frontier () =
  let t = synthetic_table () in
  let frontier = Protemp.Table.feasible_frontier t in
  check_bool "row 0" true (frontier.(0) = (50.0, Some 8e8));
  check_bool "row 1" true (frontier.(1) = (80.0, Some 5e8));
  check_bool "row 2" true (frontier.(2) = (100.0, Some 2e8))

let test_table_csv_roundtrip () =
  let t = synthetic_table () in
  let t' = Protemp.Table.of_csv (Protemp.Table.to_csv t) in
  check_bool "axes" true
    (Protemp.Table.tstarts t = Protemp.Table.tstarts t'
    && Protemp.Table.ftargets t = Protemp.Table.ftargets t');
  for i = 0 to 2 do
    for j = 0 to 2 do
      let same =
        match (Protemp.Table.cell t i j, Protemp.Table.cell t' i j) with
        | Protemp.Table.Infeasible, Protemp.Table.Infeasible -> true
        | Protemp.Table.Frequencies a, Protemp.Table.Frequencies b ->
            Vec.approx_equal ~tol:1.0 a b
        | Protemp.Table.Infeasible, Protemp.Table.Frequencies _
        | Protemp.Table.Frequencies _, Protemp.Table.Infeasible -> false
      in
      check_bool "cell" true same
    done
  done

(* ------------------------------------------------------------------ *)
(* Model *)

let test_model_easy_instance () =
  (* Cool start, modest target: thermal slack everywhere, so the
     optimum is the uniform split at exactly the target and the power
     follows Eq. 2. *)
  let m = Lazy.force machine in
  let built = Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:40.0
      ~ftarget:4e8 in
  match Protemp.Model.solve built with
  | Protemp.Model.Infeasible -> Alcotest.fail "expected feasible"
  | Protemp.Model.Feasible s ->
      check_float 2e6 "mean at target" 4e8 (Vec.mean s.Protemp.Model.frequencies);
      (* p = 8 * 4W * 0.4^2 = 5.12 W *)
      check_float 0.05 "power law" 5.12 s.Protemp.Model.total_power;
      check_bool "peak within cap" true
        (Protemp.Model.predicted_peak built s.Protemp.Model.frequencies
        <= fast_spec.Protemp.Spec.tmax +. 1e-6)

let test_model_infeasible_when_too_hot () =
  let m = Lazy.force machine in
  let built = Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:105.0
      ~ftarget:1e8 in
  check_bool "infeasible" true (Protemp.Model.solve built = Protemp.Model.Infeasible)

let test_model_throughput_satisfied () =
  let m = Lazy.force machine in
  let built = Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:70.0
      ~ftarget:7e8 in
  match Protemp.Model.solve built with
  | Protemp.Model.Infeasible -> Alcotest.fail "expected feasible"
  | Protemp.Model.Feasible s ->
      check_bool "throughput" true
        (Vec.sum s.Protemp.Model.frequencies >= 8.0 *. 7e8 -. 8e6)

let test_model_uniform_expands () =
  let m = Lazy.force machine in
  let spec = { fast_spec with Protemp.Spec.variant = Protemp.Spec.Uniform } in
  let built = Protemp.Model.build ~machine:m ~spec ~tstart:40.0 ~ftarget:3e8 in
  match Protemp.Model.solve built with
  | Protemp.Model.Infeasible -> Alcotest.fail "expected feasible"
  | Protemp.Model.Feasible s ->
      check_int "eight cores" 8 (Vec.dim s.Protemp.Model.frequencies);
      let f0 = s.Protemp.Model.frequencies.(0) in
      check_bool "all equal" true
        (Array.for_all (fun f -> Float.abs (f -. f0) < 1.0)
           s.Protemp.Model.frequencies)

let test_model_frontier_beats_uniform () =
  (* Section 5.3: the variable assignment supports at least the
     uniform frontier, with the periphery cores at or above the middle
     ones. *)
  let m = Lazy.force machine in
  let var = Protemp.Model.build_frontier ~machine:m ~spec:fast_spec ~tstart:57.0 in
  let uni =
    Protemp.Model.build_frontier ~machine:m
      ~spec:{ fast_spec with Protemp.Spec.variant = Protemp.Spec.Uniform }
      ~tstart:57.0
  in
  match (Protemp.Model.solve_frontier var, Protemp.Model.solve_frontier uni) with
  | Protemp.Model.Feasible v, Protemp.Model.Feasible u ->
      let fv = Vec.mean v.Protemp.Model.frequencies in
      let fu = Vec.mean u.Protemp.Model.frequencies in
      check_bool (Printf.sprintf "variable %.0f >= uniform %.0f" fv fu) true
        (fv >= fu -. 1e6);
      (* periphery (P1 P4 P5 P8 = 0 3 4 7) at or above middles *)
      let f = v.Protemp.Model.frequencies in
      check_bool "P1 >= P2" true (f.(0) >= f.(1) -. 1e5);
      check_bool "P4 >= P3" true (f.(3) >= f.(2) -. 1e5)
  | _, _ -> Alcotest.fail "expected both frontiers feasible"

let test_model_gradient_variant_reports_spread () =
  let m = Lazy.force machine in
  let spec = Protemp.Spec.with_gradient ~weight:0.5 fast_spec in
  let built = Protemp.Model.build ~machine:m ~spec ~tstart:50.0 ~ftarget:5e8 in
  match Protemp.Model.solve built with
  | Protemp.Model.Infeasible -> Alcotest.fail "expected feasible"
  | Protemp.Model.Feasible s -> (
      match s.Protemp.Model.gradient_spread with
      | Some spread -> check_bool "positive and bounded" true
          (spread >= 0.0 && spread < 100.0)
      | None -> Alcotest.fail "spread missing")

let test_model_rejects_bad_ftarget () =
  let m = Lazy.force machine in
  check_bool "too high" true
    (match
       Protemp.Model.build ~machine:m ~spec:fast_spec ~tstart:40.0
         ~ftarget:2e9
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Offline *)

let small_table =
  lazy
    (Protemp.Offline.sweep ~machine:(Lazy.force machine) ~spec:fast_spec
       ~tstarts:[| 40.0; 70.0; 100.0 |]
       ~ftargets:[| 3e8; 6e8; 9e8 |]
       ())

let test_offline_sweep_shape () =
  let t = Lazy.force small_table in
  check_int "rows" 3 (Array.length (Protemp.Table.tstarts t));
  check_int "cols" 3 (Array.length (Protemp.Table.ftargets t));
  (* The cool rows support everything up to 900 MHz. *)
  check_bool "cool row feasible" true
    (match Protemp.Table.cell t 0 2 with
    | Protemp.Table.Frequencies _ -> true
    | Protemp.Table.Infeasible -> false)

let test_offline_monotone_infeasibility () =
  (* Once a column is infeasible in a row, all higher columns are. *)
  let t = Lazy.force small_table in
  Array.iteri
    (fun i _ ->
      let seen_infeasible = ref false in
      Array.iteri
        (fun j _ ->
          match Protemp.Table.cell t i j with
          | Protemp.Table.Infeasible -> seen_infeasible := true
          | Protemp.Table.Frequencies _ ->
              check_bool "no feasible after infeasible" false !seen_infeasible)
        (Protemp.Table.ftargets t))
    (Protemp.Table.tstarts t)

let test_offline_frontier_consistent_with_sweep () =
  let m = Lazy.force machine in
  match
    Protemp.Offline.max_feasible_ftarget ~machine:m ~spec:fast_spec
      ~tstart:70.0 ()
  with
  | None -> Alcotest.fail "expected a frontier"
  | Some f ->
      (* every feasible cell of the 70-degree row is below the
         frontier *)
      let t = Lazy.force small_table in
      Array.iteri
        (fun j ftarget ->
          match Protemp.Table.cell t 1 j with
          | Protemp.Table.Frequencies _ ->
              check_bool "cell below frontier" true (ftarget <= f +. 1e7)
          | Protemp.Table.Infeasible ->
              check_bool "cell above frontier" true (ftarget >= f -. 1e7))
        (Protemp.Table.ftargets t)

(* ------------------------------------------------------------------ *)
(* Controllers *)

let obs ~temp ~required =
  {
    Sim.Policy.time = 0.0;
    core_temperatures = Vec.create 8 temp;
    max_core_temperature = temp;
    required_frequency = required;
    utilizations = Vec.zeros 8;
    queue_length = 0;
    queued_work = 0.0;
  }

let test_controller_uses_table () =
  let c = Protemp.Controller.create ~table:(synthetic_table ()) in
  let f = c.Sim.Policy.decide (obs ~temp:40.0 ~required:3e8) in
  check_float 1.0 "table entry" 5e8 f.(0)

let test_controller_stops_when_too_hot () =
  let c = Protemp.Controller.create ~table:(synthetic_table ()) in
  let f = c.Sim.Policy.decide (obs ~temp:150.0 ~required:3e8) in
  check_float 1e-9 "stopped" 0.0 (Vec.norm_inf f)

let test_basic_dfs_lag () =
  let c = Protemp.Basic_dfs.create ~threshold:90.0 ~lag_periods:1 ~fmax:1e9 () in
  (* First epoch hot: no history yet, reacts to the current reading. *)
  let f1 = c.Sim.Policy.decide (obs ~temp:95.0 ~required:1e9) in
  check_float 1e-9 "first epoch shut" 0.0 f1.(0);
  (* Chip cools below threshold, but the lagged reading is still hot:
     the shutdown persists one extra window. *)
  let f2 = c.Sim.Policy.decide (obs ~temp:60.0 ~required:1e9) in
  check_float 1e-9 "lagged shutdown" 0.0 f2.(0);
  (* Now the lagged reading is the cool one: full speed resumes. *)
  let f3 = c.Sim.Policy.decide (obs ~temp:95.0 ~required:1e9) in
  check_float 1e-9 "resumes on stale cool reading" 1e9 f3.(0)

let test_basic_dfs_no_lag () =
  let c = Protemp.Basic_dfs.create ~threshold:90.0 ~lag_periods:0 ~fmax:1e9 () in
  let f = c.Sim.Policy.decide (obs ~temp:95.0 ~required:1e9) in
  check_float 1e-9 "instant shutdown" 0.0 f.(0);
  let f = c.Sim.Policy.decide (obs ~temp:60.0 ~required:5e8) in
  check_float 1e-9 "instant resume" 5e8 f.(0)

let test_no_tc_follows_demand () =
  let c = Protemp.No_tc.create ~fmax:1e9 in
  let f = c.Sim.Policy.decide (obs ~temp:150.0 ~required:7e8) in
  check_float 1e-9 "ignores temperature" 7e8 f.(0)

(* ------------------------------------------------------------------ *)
(* Guarantee *)

let test_guarantee_window_peak_cooling () =
  (* Zero frequency from a hot uniform start: the peak is the start. *)
  let m = Lazy.force machine in
  let peak =
    Protemp.Guarantee.window_peak ~machine:m ~dfs_period:0.1 ~tstart:95.0
      ~frequencies:(Vec.zeros 8)
  in
  check_float 1e-9 "peak is start" 95.0 peak

let test_guarantee_audit_table () =
  let m = Lazy.force machine in
  let audit =
    Protemp.Guarantee.audit_table ~machine:m ~spec:fast_spec
      (Lazy.force small_table)
  in
  check_bool "cells checked" true (audit.Protemp.Guarantee.cells_checked > 0);
  (* Every stored entry honours tmax at full thermal resolution, even
     though the model only constrained every 4th step. *)
  check_bool
    (Printf.sprintf "margin %.4f >= 0" audit.Protemp.Guarantee.worst_margin)
    true
    (audit.Protemp.Guarantee.worst_margin >= -1e-9)

(* ------------------------------------------------------------------ *)
(* Ladder (discrete DVFS) *)

let test_ladder_floor () =
  let l = Protemp.Ladder.make [ 2e8; 6e8; 1e9 ] in
  check_float 1.0 "between levels" 6e8 (Protemp.Ladder.floor l 7e8);
  check_float 1.0 "exact level" 6e8 (Protemp.Ladder.floor l 6e8);
  check_float 1.0 "above top" 1e9 (Protemp.Ladder.floor l 2e9);
  check_float 1.0 "below bottom is off" 0.0 (Protemp.Ladder.floor l 1e8)

let test_ladder_uniform () =
  let l = Protemp.Ladder.uniform ~fmax:1e9 ~levels:4 in
  check_bool "levels" true
    (Vec.approx_equal ~tol:1.0 (Protemp.Ladder.levels l)
       [| 2.5e8; 5e8; 7.5e8; 1e9 |])

let test_ladder_validation () =
  check_bool "empty" true
    (match Protemp.Ladder.make [] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "negative" true
    (match Protemp.Ladder.make [ -1.0 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_ladder_quantize_table_preserves_guarantee () =
  let m = Lazy.force machine in
  let ladder = Protemp.Ladder.uniform ~fmax:1e9 ~levels:20 in
  let quantized =
    Protemp.Ladder.quantize_table ladder (Lazy.force small_table)
  in
  (* Quantized cells never exceed the originals... *)
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ ->
          match
            ( Protemp.Table.cell (Lazy.force small_table) i j,
              Protemp.Table.cell quantized i j )
          with
          | Protemp.Table.Frequencies a, Protemp.Table.Frequencies b ->
              Array.iteri
                (fun k fq -> check_bool "rounded down" true (fq <= a.(k)))
                b
          | Protemp.Table.Infeasible, Protemp.Table.Infeasible -> ()
          | _, _ -> Alcotest.fail "feasibility changed")
        (Protemp.Table.ftargets quantized))
    (Protemp.Table.tstarts quantized);
  (* ... so the audit must still pass. *)
  let audit = Protemp.Guarantee.audit_table ~machine:m ~spec:fast_spec quantized in
  check_bool "audit" true (audit.Protemp.Guarantee.worst_margin >= -1e-9)

(* ------------------------------------------------------------------ *)
(* Online (MPC) controller *)

let test_online_keeps_guarantee () =
  let m = Lazy.force machine in
  let spec = { Protemp.Spec.default with Protemp.Spec.constraint_stride = 8 } in
  let controller = Protemp.Online.create ~machine:m ~spec () in
  let trace = Workload.Trace.generate ~seed:808L ~n_tasks:1200 Workload.Mix.web in
  let r = Sim.Engine.run m controller Sim.Policy.first_idle trace in
  check_int "zero violations" 0 (Sim.Stats.violation_steps r.Sim.Engine.stats);
  check_int "all tasks done" 0 r.Sim.Engine.unfinished;
  match Protemp.Online.solves controller with
  | Some n -> check_bool "solved every epoch" true (n > 0)
  | None -> Alcotest.fail "solve counter missing"

let test_online_solves_counter_foreign () =
  check_bool "foreign controller has no counter" true
    (Protemp.Online.solves (Sim.Policy.workload_following ~fmax:1e9) = None)

(* The headline property: Pro-Temp never exceeds tmax, on random
   traces. *)
let prop_never_exceeds_tmax =
  QCheck2.Test.make ~name:"pro-temp: zero violations on random traces"
    ~count:6
    QCheck2.Gen.(
      pair (int_range 0 1_000_000)
        (oneofl [ "web"; "multimedia"; "compute"; "mix" ]))
    (fun (seed, mix_name) ->
      let m = Lazy.force machine in
      let table = Lazy.force small_table in
      let trace =
        Workload.Trace.generate ~seed:(Int64.of_int seed) ~n_tasks:2000
          (Workload.Mix.by_name mix_name)
      in
      let controller = Protemp.Controller.create ~table in
      let r = Sim.Engine.run m controller Sim.Policy.first_idle trace in
      Sim.Stats.violation_steps r.Sim.Engine.stats = 0
      && Sim.Stats.peak_temperature r.Sim.Engine.stats
         <= fast_spec.Protemp.Spec.tmax)

(* And the contrast: under the same saturating load, the reactive
   baseline does violate. *)
let test_basic_dfs_violates_under_load () =
  let m = Lazy.force machine in
  let trace =
    Workload.Trace.generate ~seed:4242L ~n_tasks:6000
      Workload.Mix.compute_intensive
  in
  let basic = Protemp.Basic_dfs.create ~fmax:1e9 () in
  let r = Sim.Engine.run m basic Sim.Policy.first_idle trace in
  check_bool "violations happen" true
    (Sim.Stats.violation_steps r.Sim.Engine.stats > 0)

(* Lookup semantics on random synthetic tables: the result always
   comes from the covering row, and when the ideal column (smallest
   target at or above the requirement) is feasible, it is chosen. *)
let prop_table_lookup_semantics =
  QCheck2.Test.make ~name:"table: lookup picks the ideal feasible column"
    ~count:200
    QCheck2.Gen.(
      triple (int_range 0 1_000_000)
        (float_range 20.0 120.0)
        (float_range 0.0 1.1e9))
    (fun (seed, temperature, required) ->
      let st = Random.State.make [| seed |] in
      let tstarts = [| 40.0; 70.0; 100.0 |] in
      let ftargets = [| 2e8; 5e8; 8e8 |] in
      let cells =
        Array.map
          (fun _ ->
            Array.map
              (fun f ->
                if Random.State.bool st then
                  Protemp.Table.Frequencies (Vec.create 8 f)
                else Protemp.Table.Infeasible)
              ftargets)
          tstarts
      in
      let table = Protemp.Table.make ~tstarts ~ftargets cells in
      match Protemp.Table.lookup table ~temperature ~required with
      | None ->
          (* Legal only when the chip is hotter than every row, or
             every cell of the covering row at or below the ideal
             column is infeasible. *)
          temperature > 100.0
          ||
          let row = Option.get (Protemp.Table.row_for_temperature table temperature) in
          let ideal =
            let rec go j =
              if j < 2 && ftargets.(j) < required then go (j + 1) else j
            in
            go 0
          in
          Array.for_all
            (fun j -> cells.(row).(j) = Protemp.Table.Infeasible)
            (Array.init (ideal + 1) Fun.id)
      | Some f ->
          temperature <= 100.0
          &&
          let row = Option.get (Protemp.Table.row_for_temperature table temperature) in
          let ideal =
            let rec go j =
              if j < 2 && ftargets.(j) < required then go (j + 1) else j
            in
            go 0
          in
          (* the result is a feasible cell of the covering row at or
             below the ideal column, and the highest such one *)
          let rec highest j =
            if j < 0 then None
            else
              match cells.(row).(j) with
              | Protemp.Table.Frequencies g -> Some g
              | Protemp.Table.Infeasible -> highest (j - 1)
          in
          (match highest ideal with
          | Some g -> Vec.approx_equal ~tol:1.0 f g
          | None -> false))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_never_exceeds_tmax; prop_table_lookup_semantics ]

let () =
  Alcotest.run "protemp"
    [
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "with_gradient" `Quick test_spec_with_gradient;
        ] );
      ( "table",
        [
          Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "row selection" `Quick test_table_row_selection;
          Alcotest.test_case "lookup rounds up" `Quick
            test_table_lookup_rounds_up_frequency;
          Alcotest.test_case "lookup falls back" `Quick
            test_table_lookup_falls_back_down;
          Alcotest.test_case "lookup too hot" `Quick
            test_table_lookup_none_when_too_hot;
          Alcotest.test_case "frontier" `Quick test_table_frontier;
          Alcotest.test_case "csv roundtrip" `Quick test_table_csv_roundtrip;
        ] );
      ( "model",
        [
          Alcotest.test_case "easy instance" `Slow test_model_easy_instance;
          Alcotest.test_case "infeasible when too hot" `Slow
            test_model_infeasible_when_too_hot;
          Alcotest.test_case "throughput satisfied" `Slow
            test_model_throughput_satisfied;
          Alcotest.test_case "uniform expands" `Slow test_model_uniform_expands;
          Alcotest.test_case "frontier beats uniform" `Slow
            test_model_frontier_beats_uniform;
          Alcotest.test_case "gradient variant" `Slow
            test_model_gradient_variant_reports_spread;
          Alcotest.test_case "rejects bad ftarget" `Quick
            test_model_rejects_bad_ftarget;
        ] );
      ( "offline",
        [
          Alcotest.test_case "sweep shape" `Slow test_offline_sweep_shape;
          Alcotest.test_case "monotone infeasibility" `Slow
            test_offline_monotone_infeasibility;
          Alcotest.test_case "frontier vs sweep" `Slow
            test_offline_frontier_consistent_with_sweep;
        ] );
      ( "controllers",
        [
          Alcotest.test_case "pro-temp uses table" `Quick
            test_controller_uses_table;
          Alcotest.test_case "pro-temp stops when too hot" `Quick
            test_controller_stops_when_too_hot;
          Alcotest.test_case "basic-dfs lag" `Quick test_basic_dfs_lag;
          Alcotest.test_case "basic-dfs no lag" `Quick test_basic_dfs_no_lag;
          Alcotest.test_case "no-tc follows demand" `Quick
            test_no_tc_follows_demand;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "floor" `Quick test_ladder_floor;
          Alcotest.test_case "uniform" `Quick test_ladder_uniform;
          Alcotest.test_case "validation" `Quick test_ladder_validation;
          Alcotest.test_case "quantized table keeps guarantee" `Slow
            test_ladder_quantize_table_preserves_guarantee;
        ] );
      ( "online",
        [
          Alcotest.test_case "keeps the guarantee" `Slow
            test_online_keeps_guarantee;
          Alcotest.test_case "foreign counter" `Quick
            test_online_solves_counter_foreign;
        ] );
      ( "guarantee",
        [
          Alcotest.test_case "window peak cooling" `Quick
            test_guarantee_window_peak_cooling;
          Alcotest.test_case "table audit" `Slow test_guarantee_audit_table;
          Alcotest.test_case "basic-dfs violates" `Slow
            test_basic_dfs_violates_under_load;
        ] );
      ("properties", props);
    ]
